"""Command-line interface for the repro constraint database engine.

Usage (also via ``python -m repro``):

.. code-block:: text

    repro check DB.cdb                     validate + structural report
    repro regions DB.cdb [--decomposition arrangement|refined|nc1]
    repro query DB.cdb "forall x. S(x) -> x < 5"
    repro explain DB.cdb "..." [--analyze] annotated query plan tree
    repro arrangement DB.cdb               face census + incidence stats
    repro encode DB.cdb                    the Theorem 6.4 encoding word
    repro render DB.cdb out.svg            2-D relations only
    repro serve DB.cdb [NAME=DB2.cdb ...]  async multi-tenant HTTP API
    repro metrics [DB.cdb ["query"]]       Prometheus text metrics dump
    repro slowlog [PATH]                   inspect the slow-query log

Databases are text files in the format of :mod:`repro.constraints.io`.

``--journal PATH`` (or ``REPRO_JOURNAL``) streams the structured event
journal of the command — spans, cache and store decisions, fixpoint
stages, worker lifecycle — to PATH as JSON Lines; see
:mod:`repro.obs.journal` and ``repro.obs.replay``.

Every **one-shot** invocation of :func:`main` starts from pristine
observability state (:func:`repro.obs.reset_all`), so back-to-back
calls in one process cannot leak counters, open spans or journal
buffers.  Long-running commands (``serve``) skip the reset: their
counters are live operational state surfaced by ``GET /v1/stats`` and
must survive for the life of the process.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.config import (
    EXECUTORS,
    METRICS_LABELS,
    OPTIMIZERS,
    EngineConfig,
)
from repro.constraints.io import load_database
from repro.engine import QueryEngine
from repro.geometry import fastlp
from repro.logic.parser import parse_query
from repro.logic.properties import (
    coordinate_bound,
    has_small_coordinate_property,
)
from repro.obs import JOURNAL, TRACER, get_registry, reset_all
from repro.obs.journal import ENV_JOURNAL
from repro.store import store_scope
from repro.twosorted.structure import RegionExtension


def _add_decomposition_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--decomposition",
        choices=("arrangement", "refined", "nc1"),
        default="arrangement",
        help="region decomposition to use (default: arrangement)",
    )


def _add_spatial_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spatial",
        default="S",
        help="name of the spatial relation (default: S)",
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print a span tree of where the command's time went",
    )


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for arrangement construction "
        "(default: $REPRO_JOBS, else sequential)",
    )


def _add_cache_dir_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist arrangements and query answers under DIR so later "
        "runs warm-start from disk (default: $REPRO_CACHE_DIR, else no "
        "persistence; $REPRO_CACHE_BUDGET bounds the store in bytes)",
    )


def _add_journal_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append the command's structured event journal to PATH as "
        "JSON Lines (default: $REPRO_JOURNAL, else no journal)",
    )


def _add_lp_mode_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lp-mode",
        choices=fastlp.LP_MODES,
        default=None,
        help="LP tier: 'filtered' = certified float filter with exact "
        "fallback, 'exact' = rational simplex only "
        "(default: $REPRO_LP_MODE, else filtered)",
    )


def _add_optimizer_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--optimizer",
        choices=OPTIMIZERS,
        default=None,
        help="cost-based plan optimizer: 'on' = answer-preserving "
        "rewrites (NNF + miniscoping, cost-ordered operands) fed by "
        "persisted statistics, 'off' = the ablated oracle plans "
        "(default: $REPRO_OPTIMIZER, else on)",
    )


def _add_executor_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="fixpoint executor: 'compiled' = relational-algebra IR "
        "over memoised kernels, 'interpreted' = the rule-at-a-time "
        "oracle; both give byte-identical answers "
        "(default: $REPRO_EXECUTOR, else compiled)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="fixed-point query languages for linear constraint "
                    "databases (Kreutzer, PODS 2000)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="validate a database file")
    check.add_argument("database")
    _add_trace_flag(check)

    regions = commands.add_parser("regions", help="list the region sort")
    regions.add_argument("database")
    _add_decomposition_flag(regions)
    _add_spatial_flag(regions)
    _add_trace_flag(regions)

    query = commands.add_parser("query", help="evaluate a query")
    query.add_argument("database")
    query.add_argument("text", help="query in the region-logic syntax")
    _add_decomposition_flag(query)
    _add_spatial_flag(query)
    _add_trace_flag(query)
    _add_jobs_flag(query)
    _add_lp_mode_flag(query)
    _add_optimizer_flag(query)
    _add_cache_dir_flag(query)
    _add_journal_flag(query)

    explain = commands.add_parser(
        "explain",
        help="compile a query into an annotated plan tree; --analyze "
             "also executes it and attaches per-node measured costs",
    )
    explain.add_argument("database")
    explain.add_argument(
        "text",
        help="query in the region-logic syntax (or a datalog program, "
             "one rule per line, with --datalog)",
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the query and attach per-node wall time, LP "
             "solves, DFS nodes, cache hits and fixpoint stage deltas",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the plan (and totals) as JSON instead of a tree",
    )
    explain.add_argument(
        "--datalog",
        action="store_true",
        help="treat the query text as a spatial datalog program",
    )
    _add_decomposition_flag(explain)
    _add_spatial_flag(explain)
    _add_jobs_flag(explain)
    _add_lp_mode_flag(explain)
    _add_executor_flag(explain)
    _add_optimizer_flag(explain)
    _add_cache_dir_flag(explain)
    _add_journal_flag(explain)

    profile = commands.add_parser(
        "profile",
        help="evaluate a query and dump a JSON span tree plus metrics",
    )
    profile.add_argument("database")
    profile.add_argument("text", help="query in the region-logic syntax")
    _add_decomposition_flag(profile)
    _add_spatial_flag(profile)
    _add_jobs_flag(profile)
    _add_lp_mode_flag(profile)
    _add_cache_dir_flag(profile)
    _add_journal_flag(profile)

    arrangement = commands.add_parser(
        "arrangement", help="arrangement census and incidence statistics"
    )
    arrangement.add_argument("database")
    _add_spatial_flag(arrangement)
    _add_trace_flag(arrangement)
    _add_jobs_flag(arrangement)
    _add_lp_mode_flag(arrangement)
    _add_cache_dir_flag(arrangement)

    bench = commands.add_parser(
        "bench",
        help="run a named before/after benchmark and emit its JSON record",
    )
    bench.add_argument(
        "name", choices=("e2", "e3", "e14", "e15", "e16"),
        help="benchmark to run (E2 arrangement scaling, E3 LP filter "
             "microbench, E14 cost-based optimizer, E15 spatial "
             "datalog, E16 incremental view maintenance)",
    )
    bench.add_argument(
        "--sizes",
        default=None,
        help="comma-separated size ladder (default: the benchmark's own)",
    )
    bench.add_argument(
        "--check-only",
        action="store_true",
        help="verify baseline/fast equivalence without requiring a "
             "speedup (exit 1 on mismatch); used by CI",
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the JSON record to PATH (e.g. BENCH_E2.json)",
    )
    bench.add_argument(
        "--append-history",
        default=None,
        metavar="PATH",
        dest="append_history",
        help="append a one-line summary (git sha, UTC timestamp, python "
             "version, speedup) to PATH as JSON Lines",
    )
    bench.add_argument(
        "--check-regression",
        action="store_true",
        dest="check_regression",
        help="compare this run's fast-path timing against the median of "
             "recent matching history lines; exit 3 on a regression",
    )
    bench.add_argument(
        "--history",
        default="BENCH_HISTORY.jsonl",
        metavar="PATH",
        help="history JSONL file for --check-regression "
             "(default: BENCH_HISTORY.jsonl)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="slowdown fraction tolerated before flagging a regression "
             "(default: 0.25, i.e. 25%% over the historical median)",
    )
    bench.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="number of recent matching history lines whose median is "
             "the baseline (default: 5)",
    )
    _add_jobs_flag(bench)
    _add_lp_mode_flag(bench)
    _add_executor_flag(bench)
    _add_cache_dir_flag(bench)
    _add_journal_flag(bench)

    stats = commands.add_parser(
        "stats",
        help="inspect the optimizer's persisted execution statistics "
             "(hottest plan nodes, observed vs predicted cost)",
    )
    stats.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="show the N hottest plan nodes by accumulated wall "
             "(default: 10)",
    )
    stats.add_argument(
        "--query",
        default=None,
        metavar="TEXT",
        help="also parse TEXT and report observed vs predicted cost "
             "for each of its sub-formulas with recorded statistics",
    )
    stats.add_argument(
        "--clear",
        action="store_true",
        help="reset the persisted statistics to an empty object",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the report as JSON instead of a table",
    )
    _add_cache_dir_flag(stats)

    encode = commands.add_parser(
        "encode", help="print the capture encoding word"
    )
    encode.add_argument("database")
    _add_decomposition_flag(encode)
    _add_spatial_flag(encode)
    _add_trace_flag(encode)

    serve = commands.add_parser(
        "serve",
        help="serve databases over the async multi-tenant HTTP/JSON API "
             "(POST /v1/query, /v1/explain; GET /v1/healthz, "
             "/v1/stats, /metrics)",
    )
    serve.add_argument(
        "databases",
        nargs="+",
        metavar="DB",
        help="database file(s) to serve; 'NAME=PATH' registers PATH "
             "under NAME, a bare PATH under its file stem; the first "
             "one is also the 'default' database",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="TCP port; 0 picks an ephemeral port "
                            "(default: 8787)")
    serve.add_argument(
        "--max-concurrent", type=int, default=4, metavar="N",
        help="requests evaluating at once (default: 4)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="requests allowed to wait before 503 (default: 64)",
    )
    serve.add_argument(
        "--quota-rate", type=float, default=50.0, metavar="RPS",
        help="per-tenant token refill rate in requests/second "
             "(default: 50)",
    )
    serve.add_argument(
        "--quota-burst", type=int, default=100, metavar="N",
        help="per-tenant token bucket capacity (default: 100)",
    )
    serve.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="exit after serving N requests (smoke tests and CI)",
    )
    serve.add_argument(
        "--slow-log",
        default=None,
        metavar="PATH",
        dest="slow_log",
        help="capture EXPLAIN ANALYZE records for requests slower than "
             "the SLO latency objective to PATH as JSON Lines "
             "(default: $REPRO_SLOW_LOG, else off)",
    )
    serve.add_argument(
        "--slo-latency-ms",
        type=float,
        default=None,
        metavar="MS",
        dest="slo_latency_ms",
        help="per-tenant latency objective in milliseconds; doubles as "
             "the slow-query capture threshold "
             "(default: $REPRO_SLO_LATENCY_MS, else 250)",
    )
    serve.add_argument(
        "--metrics-labels",
        choices=METRICS_LABELS,
        default=None,
        dest="metrics_labels",
        help="attach tenant/endpoint/executor/lp_mode labels to "
             "histogram series; 'off' collapses everything to unlabeled "
             "aggregates (default: $REPRO_METRICS_LABELS, else on)",
    )
    _add_decomposition_flag(serve)
    _add_spatial_flag(serve)
    _add_jobs_flag(serve)
    _add_lp_mode_flag(serve)
    _add_executor_flag(serve)
    _add_optimizer_flag(serve)
    _add_cache_dir_flag(serve)
    _add_journal_flag(serve)

    metrics = commands.add_parser(
        "metrics",
        help="dump process metrics in the Prometheus text exposition "
             "format; with a database (and query) the command evaluates "
             "first so engine/LP/store series are populated",
    )
    metrics.add_argument(
        "database", nargs="?", default=None,
        help="database to load (optional; populates store/engine series)",
    )
    metrics.add_argument(
        "text", nargs="?", default=None,
        help="query to evaluate before the dump (optional)",
    )
    _add_decomposition_flag(metrics)
    _add_spatial_flag(metrics)
    _add_jobs_flag(metrics)
    _add_lp_mode_flag(metrics)
    _add_executor_flag(metrics)
    _add_optimizer_flag(metrics)
    _add_cache_dir_flag(metrics)

    slowlog = commands.add_parser(
        "slowlog",
        help="inspect the slow-query log written by a server "
             "(--slow-log / $REPRO_SLOW_LOG)",
    )
    slowlog.add_argument(
        "path", nargs="?", default=None,
        help="slow-log JSONL file (default: $REPRO_SLOW_LOG)",
    )
    slowlog.add_argument(
        "--limit", type=int, default=10, metavar="N",
        help="show only the newest N records (default: 10)",
    )
    slowlog.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the full records (including the captured EXPLAIN "
             "ANALYZE plans) as JSON instead of a summary table",
    )

    render = commands.add_parser(
        "render", help="render a 2-D database to SVG"
    )
    render.add_argument("database")
    render.add_argument("output")
    render.add_argument(
        "--viewport", default="-1,4,-1,4",
        help="xmin,xmax,ymin,ymax (default -1,4,-1,4)",
    )
    _add_spatial_flag(render)

    return parser


def _cmd_check(args: argparse.Namespace, out) -> int:
    database = load_database(args.database)
    print(f"database: {args.database}", file=out)
    print(f"  relations: {', '.join(database.names())}", file=out)
    print(f"  representation size |B| = {database.size()}", file=out)
    for name, relation in database:
        empty = relation.is_empty()
        print(
            f"  {name}({', '.join(relation.variables)}): "
            f"{len(relation.disjuncts())} disjuncts"
            f"{', EMPTY' if empty else ''}",
            file=out,
        )
    return 0


def _cmd_regions(args: argparse.Namespace, out) -> int:
    database = load_database(args.database)
    extension = RegionExtension.build(
        database, args.decomposition, args.spatial
    )
    print(f"{extension}", file=out)
    for region in extension.regions:
        inside = extension.region_subset_of_spatial(region.index)
        marker = "in S" if inside else ""
        print(f"  {region} {marker}", file=out)
    return 0


def _cmd_query(args: argparse.Namespace, out) -> int:
    database = load_database(args.database)
    formula = parse_query(args.text)
    engine = QueryEngine(
        database, args.decomposition, args.spatial,
        config=EngineConfig(jobs=args.jobs, optimizer=args.optimizer),
    )
    if formula.free_region_vars() or formula.free_set_vars():
        print(
            "error: queries must not have free region or set variables",
            file=out,
        )
        return 2
    answer = engine.evaluate(formula)
    if answer.arity == 0:
        print(f"answer: {not answer.is_empty()}", file=out)
        return 0
    print(f"answer relation over ({', '.join(answer.variables)}):",
          file=out)
    print(f"  {answer.formula}", file=out)
    witnesses = answer.sample_points()
    if witnesses:
        shown = ", ".join(
            "(" + ", ".join(str(c) for c in point) + ")"
            for point in witnesses[:5]
        )
        print(f"  sample points: {shown}", file=out)
    else:
        print("  (empty)", file=out)
    return 0


def _cmd_explain(args: argparse.Namespace, out) -> int:
    """EXPLAIN (ANALYZE) a query: print the annotated plan tree."""
    import json

    database = load_database(args.database)
    if args.datalog:
        from repro.datalog.parser import parse_program
        from repro.explain import explain_datalog

        program = parse_program(args.text)
        result = explain_datalog(
            program, database, analyze=args.analyze,
            executor=args.executor, optimizer=args.optimizer,
        )
    else:
        formula = parse_query(args.text)
        if formula.free_region_vars() or formula.free_set_vars():
            print(
                "error: queries must not have free region or set "
                "variables",
                file=out,
            )
            return 2
        engine = QueryEngine(
            database, args.decomposition, args.spatial,
            config=EngineConfig(jobs=args.jobs, optimizer=args.optimizer),
        )
        result = engine.explain(formula, analyze=args.analyze)
    if args.as_json:
        print(json.dumps(result.to_dict(), indent=2), file=out)
    else:
        print(result.format(), file=out)
    return 0


def _cmd_profile(args: argparse.Namespace, out) -> int:
    """Evaluate a query under tracing; emit a JSON span tree + metrics.

    The metrics registry is reset first so the dump reflects this one
    command; the span tree covers database load, the Theorem-3.1
    construction (or its cache hit), LP activity and the evaluator.
    """
    import json

    registry = get_registry()
    registry.reset()
    TRACER.start("profile")
    try:
        with TRACER.span("load"):
            database = load_database(args.database)
            formula = parse_query(args.text)
        if formula.free_region_vars() or formula.free_set_vars():
            print(
                "error: queries must not have free region or set variables",
                file=out,
            )
            return 2
        engine = QueryEngine(
            database, args.decomposition, args.spatial,
            config=EngineConfig(jobs=args.jobs),
        )
        answer = engine.evaluate(formula)
        empty = answer.is_empty()
    finally:
        root = TRACER.stop()
    payload = {
        "command": "profile",
        "database": args.database,
        "query": args.text,
        "decomposition": args.decomposition,
        "lp_mode": fastlp.get_lp_mode(),
        "cache_dir": args.cache_dir,
        "store": engine.stats().get("store"),
        "fingerprint": engine.fingerprint,
        "answer": {
            "variables": list(answer.variables),
            "empty": empty,
        },
        "spans": root.to_dict(),
        "metrics": registry.snapshot(),
    }
    print(json.dumps(payload, indent=2), file=out)
    return 0


def _cmd_arrangement(args: argparse.Namespace, out) -> int:
    from repro.arrangement.builder import build_arrangement
    from repro.arrangement.incidence import IncidenceGraph

    database = load_database(args.database)
    relation = database.relation(args.spatial)
    arrangement = build_arrangement(relation, parallel=args.jobs)
    census = arrangement.face_count_by_dimension()
    print(f"hyperplanes: {len(arrangement.hyperplanes)}", file=out)
    for dim in sorted(census, reverse=True):
        print(f"  {dim}-dimensional faces: {census[dim]}", file=out)
    print(f"  total faces: {len(arrangement)}", file=out)
    graph = IncidenceGraph.build(arrangement)
    print(f"  incidence edges: {graph.edge_count()}", file=out)
    inside = len(arrangement.faces_in_relation())
    print(f"  faces contained in {args.spatial}: {inside}", file=out)
    return 0


def _cmd_encode(args: argparse.Namespace, out) -> int:
    from repro.capture.encoding import encode_database

    database = load_database(args.database)
    extension = RegionExtension.build(
        database, args.decomposition, args.spatial
    )
    word = encode_database(extension)
    small = has_small_coordinate_property(extension)
    print(f"regions: {len(extension.decomposition)}", file=out)
    print(f"coordinate bound: {coordinate_bound(extension)}", file=out)
    print(f"small coordinate property: {small}", file=out)
    print(f"word: {word}", file=out)
    return 0


def _cmd_render(args: argparse.Namespace, out) -> int:
    import pathlib

    from repro.viz.svg import render_relation

    database = load_database(args.database)
    relation = database.relation(args.spatial)
    parts = [float(v) for v in args.viewport.split(",")]
    if len(parts) != 4:
        print("error: viewport must be xmin,xmax,ymin,ymax", file=out)
        return 2
    svg = render_relation(relation, viewport=tuple(parts))
    pathlib.Path(args.output).write_text(svg)
    print(f"wrote {args.output}", file=out)
    return 0


def _cmd_bench(args: argparse.Namespace, out) -> int:
    """Run a named benchmark; print (and optionally write) its record.

    With ``--check-only`` the exit code reflects only the baseline/fast
    equivalence checks; otherwise a failed equivalence still fails the
    run — the fast paths must never change answers.
    """
    import json

    from repro.bench import (
        BENCHMARKS,
        append_history,
        check_regression,
        write_record,
    )

    runner, __ = BENCHMARKS[args.name]
    kwargs: dict = {"check_only": args.check_only}
    if args.sizes:
        try:
            sizes = tuple(
                int(part) for part in args.sizes.split(",") if part.strip()
            )
        except ValueError:
            print("error: --sizes must be comma-separated integers",
                  file=out)
            return 2
        kwargs["sizes"] = sizes
    if args.name == "e2":
        kwargs["jobs"] = args.jobs
    if args.name == "e15" and args.executor:
        kwargs["executor"] = args.executor
    record = runner(**kwargs)
    print(json.dumps(record, indent=2), file=out)
    if args.output:
        write_record(record, args.output)
        print(f"wrote {args.output}", file=out)
    exit_code = 0 if record["all_match"] else 1
    if args.check_regression:
        regression_kwargs: dict = {}
        if args.window is not None:
            regression_kwargs["window"] = args.window
        if args.tolerance is not None:
            regression_kwargs["tolerance"] = args.tolerance
        verdict = check_regression(
            record, args.history, **regression_kwargs
        )
        print(json.dumps({"regression_check": verdict}, indent=2),
              file=out)
        if verdict["status"] == "regression":
            print(
                f"error: performance regression — current "
                f"{verdict['current_s']}s vs median "
                f"{verdict['median_s']}s over the last "
                f"{verdict['samples']} matching run(s) "
                f"(ratio {verdict['ratio']}, tolerance "
                f"{verdict['tolerance']})",
                file=out,
            )
            exit_code = exit_code or 3
    # History is appended AFTER the regression check: a run must not be
    # compared against itself, and a regressing run still lands in the
    # history so a deliberate slowdown re-baselines after `window` runs.
    if args.append_history:
        append_history(record, args.append_history)
        print(f"appended history to {args.append_history}", file=out)
    return exit_code


def _cmd_stats(args: argparse.Namespace, out) -> int:
    """Inspect (or clear) the optimizer's persisted statistics.

    Works against the active disk store (``--cache-dir`` or
    ``REPRO_CACHE_DIR``): prints the decayed run count and the hottest
    plan-node fingerprints by accumulated wall.  With ``--query`` the
    text is parsed and each sub-formula with recorded measurements is
    shown next to the cost model's static prediction, so calibration
    drift is visible at a glance.  ``--clear`` writes a fresh empty
    statistics object over the store entry.
    """
    import json

    from repro.optimizer import Statistics, node_fingerprint
    from repro.optimizer.cost import CostModel, _SECONDS_TO_UNITS
    from repro.store import active_store, statistics_key

    store = active_store()
    if store is None:
        print(
            "error: no disk store active (pass --cache-dir or set "
            "REPRO_CACHE_DIR)",
            file=out,
        )
        return 2
    if args.clear:
        store.save("statistics", statistics_key(), Statistics())
        print(f"cleared statistics in {store.root}", file=out)
        return 0
    loaded = store.load("statistics", statistics_key())
    statistics = loaded if isinstance(loaded, Statistics) else Statistics()
    report: dict = {
        "cache_dir": str(store.root),
        "runs": float(statistics.runs),
        "nodes": len(statistics.nodes),
        "hottest": [
            {
                "fingerprint": fingerprint[:16],
                "calls": float(stats.calls),
                "wall_s": round(float(stats.wall), 6),
                "mean_wall_s": round(float(stats.mean_wall()), 6),
                "mean_size": round(float(stats.mean_size()), 2),
            }
            for fingerprint, stats in statistics.hottest(args.top)
        ],
    }
    if args.query:
        formula = parse_query(args.query)
        model = CostModel(statistics)
        rows = []
        seen: set[str] = set()
        pending = [formula]
        while pending:
            node = pending.pop()
            fingerprint = node_fingerprint(node)
            pending.extend(_subformulas(node))
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            stats = statistics.get(fingerprint)
            if stats is None or stats.calls == 0:
                continue
            predicted = float(model.static_cost(node))
            observed = float(
                stats.mean_wall() * _SECONDS_TO_UNITS
            )
            rows.append(
                {
                    "node": str(node)[:60],
                    "predicted_cost": round(predicted, 2),
                    "observed_cost": round(observed, 2),
                    "error_ratio": round(observed / predicted, 3)
                    if predicted > 0
                    else None,
                }
            )
        report["query"] = {"text": args.query, "nodes": rows}
    if args.as_json:
        print(json.dumps(report, indent=2), file=out)
        return 0
    print(f"statistics in {report['cache_dir']}", file=out)
    print(
        f"  runs (decayed): {report['runs']:.2f}   "
        f"nodes: {report['nodes']}",
        file=out,
    )
    if report["hottest"]:
        print(f"  hottest {len(report['hottest'])} nodes:", file=out)
        for row in report["hottest"]:
            print(
                f"    {row['fingerprint']}  calls={row['calls']:.1f}  "
                f"wall={row['wall_s']:.4f}s  "
                f"mean={row['mean_wall_s']:.6f}s  "
                f"mean_size={row['mean_size']}",
                file=out,
            )
    else:
        print("  (no recorded nodes)", file=out)
    for row in report.get("query", {}).get("nodes", ()):
        print(
            f"    {row['node']}\n"
            f"      predicted={row['predicted_cost']}  "
            f"observed={row['observed_cost']}  "
            f"error_ratio={row['error_ratio']}",
            file=out,
        )
    return 0


def _subformulas(node) -> list:
    """Direct sub-formulas of one region-logic AST node."""
    import dataclasses

    from repro.logic import ast as logic_ast

    children = []
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, logic_ast.RegFormula):
            children.append(value)
        elif isinstance(value, tuple):
            children.extend(
                item
                for item in value
                if isinstance(item, logic_ast.RegFormula)
            )
    return children


def _cmd_metrics(args: argparse.Namespace, out) -> int:
    """Dump process metrics as Prometheus text exposition.

    ``main`` resets observability first (one-shot command), so the dump
    reflects exactly the work done here: loading the database populates
    store series, evaluating a query populates the engine, LP and
    arrangement histograms.  Without arguments the dump shows an idle
    (empty) process — useful to check the exposition pipeline itself.
    """
    from repro.obs.telemetry import get_telemetry, render_prometheus

    if args.text is not None and args.database is None:
        print("error: a query needs a database", file=out)
        return 2
    if args.database is not None:
        database = load_database(args.database)
        engine = QueryEngine(
            database, args.decomposition, args.spatial,
            config=EngineConfig(jobs=args.jobs),
        )
        if args.text is not None:
            formula = parse_query(args.text)
            if formula.free_region_vars() or formula.free_set_vars():
                print(
                    "error: queries must not have free region or set "
                    "variables",
                    file=out,
                )
                return 2
            engine.evaluate(formula)
    print(
        render_prometheus(get_registry().snapshot(), get_telemetry()),
        file=out,
        end="",
    )
    return 0


def _cmd_slowlog(args: argparse.Namespace, out) -> int:
    """Inspect the slow-query log (newest records last)."""
    import json

    from repro.obs.slowlog import ENV_SLOW_LOG, load_slow_log

    path = (
        args.path
        or os.environ.get(ENV_SLOW_LOG, "").strip()
        or None
    )
    if path is None:
        print(
            "error: no slow-query log (pass PATH or set REPRO_SLOW_LOG)",
            file=out,
        )
        return 2
    records = load_slow_log(path, limit=args.limit)
    if args.as_json:
        print(json.dumps(records, indent=2), file=out)
        return 0
    if not records:
        print(f"no slow-query records in {path}", file=out)
        return 0
    print(f"slow queries in {path} (newest last):", file=out)
    for record in records:
        wall = record.get("wall_ms")
        wall_text = (
            f"{wall:.1f}ms" if isinstance(wall, (int, float)) else "?"
        )
        print(
            f"  {record.get('ts', '?')}  "
            f"tenant={record.get('tenant', '?')}  "
            f"db={record.get('database', '?')}  "
            f"wall={wall_text}  "
            f"threshold={record.get('threshold_ms', '?')}ms",
            file=out,
        )
        query = str(record.get("query", "")).replace("\n", " ")
        print(f"    {query[:70]}", file=out)
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    """Run the async multi-tenant HTTP/JSON service until interrupted.

    The engine configuration is pinned once at startup with
    :meth:`EngineConfig.resolve` (flag > ``REPRO_*`` env > default): a
    long-lived server must not change behaviour because an environment
    variable moved under it mid-flight.
    """
    import asyncio
    import pathlib

    from repro.server import ConstraintService
    from repro.server.service import serve as serve_async

    databases = {}
    for spec in args.databases:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = pathlib.Path(spec).stem, spec
        if not name or name in databases:
            print(f"error: bad or duplicate database name {name!r}",
                  file=out)
            return 2
        databases[name] = load_database(path)
    config = EngineConfig.resolve(
        lp_mode=args.lp_mode, jobs=args.jobs, cache_dir=args.cache_dir,
        executor=args.executor, optimizer=args.optimizer,
        slow_log=args.slow_log, slo_latency_ms=args.slo_latency_ms,
        metrics_labels=args.metrics_labels,
    )
    service = ConstraintService(
        databases,
        config,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        decomposition=args.decomposition,
        spatial_name=args.spatial,
        max_requests=args.max_requests,
    )

    def announce(server) -> None:
        names = ", ".join(sorted(databases))
        print(f"serving [{names}] on {server.address}", file=out,
              flush=True)

    try:
        asyncio.run(serve_async(service, args.host, args.port, announce))
    except KeyboardInterrupt:
        print("shutting down", file=out)
    return 0


_COMMANDS = {
    "check": _cmd_check,
    "regions": _cmd_regions,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "profile": _cmd_profile,
    "arrangement": _cmd_arrangement,
    "encode": _cmd_encode,
    "render": _cmd_render,
    "bench": _cmd_bench,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "metrics": _cmd_metrics,
    "slowlog": _cmd_slowlog,
}

#: Commands that start and stop the process tracer themselves; ``main``
#: must not wrap them in a second collection.  ``serve`` is listed
#: because EXPLAIN ANALYZE requests drive the tracer per request.
_SELF_TRACING = ("profile", "explain", "serve")

#: Long-running commands whose counters are live operational state
#: (``GET /v1/stats``): ``main`` must NOT wipe observability for these.
_LONG_RUNNING = ("serve",)


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code.

    One-shot commands start from pristine observability state —
    counters zeroed, no open spans, empty journal — so repeated
    in-process invocations (test suites, notebooks) cannot leak
    telemetry into each other; long-running commands (``serve``) keep
    their counters for the life of the process.  When a
    journal sink is requested (``--journal`` or ``REPRO_JOURNAL``) the
    command runs under the journal, and under the tracer too (without
    printing the trace) so span events reach the sink.
    """
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command not in _LONG_RUNNING:
        # One-shot commands start pristine; a server's counters are its
        # operational state and must survive for the process lifetime.
        reset_all()
    journal_path = (
        getattr(args, "journal", None)
        or os.environ.get(ENV_JOURNAL, "").strip()
        or None
    )
    if journal_path is not None:
        JOURNAL.start(journal_path)
        JOURNAL.emit("meta", command=args.command)
    tracing = getattr(args, "trace", False)
    want_trace = tracing or (
        journal_path is not None and args.command not in _SELF_TRACING
    )
    if want_trace:
        TRACER.start(args.command)
    try:
        with fastlp.lp_mode(getattr(args, "lp_mode", None)), \
                store_scope(getattr(args, "cache_dir", None)):
            return _COMMANDS[args.command](args, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=out)
        return 1
    finally:
        if want_trace:
            root = TRACER.stop()
            if tracing:
                print("\ntrace:", file=out)
                print(root.format(indent=1), file=out)
        if journal_path is not None:
            JOURNAL.stop()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
