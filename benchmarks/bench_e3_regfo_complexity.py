"""E3 — Theorem 4.3: RegFO queries have PTIME data complexity.

Evaluates fixed RegFO queries on growing databases (interval chains) and
checks (a) answers stay correct and quantifier-free (closure), (b) time
scales polynomially in the representation size.
"""

import time

from repro.engine import QueryEngine
from repro.logic.parser import parse_query
from repro.workloads.generators import interval_chain

from conftest import empirical_exponent

# A mixed-sort RegFO query: points of S whose region is contained in S
# and adjacent to a region containing the point 0.
MIXED = parse_query(
    "exists R, Z. (x) in R & sub(R, S) & adj(R, Z) & "
    "(exists z. z = 0 & (z) in Z)"
)

SENTENCE = parse_query(
    "forall x. S(x) -> (exists R. (x) in R & sub(R, S))"
)


def test_e3_regfo_scaling(report):
    sizes, times = [], []
    for k in (1, 2, 4, 8):
        database = interval_chain(k)
        start = time.perf_counter()
        answer = QueryEngine(database).evaluate(MIXED)
        elapsed = time.perf_counter() - start
        sizes.append(database.size())
        times.append(elapsed)
        assert answer.formula.is_quantifier_free()
    exponent = empirical_exponent(sizes, times)
    assert exponent < 5.0, exponent
    report("E3: RegFO data complexity (Theorem 4.3)", [
        (f"|B|={s}:", f"{t * 1000:.1f} ms") for s, t in zip(sizes, times)
    ] + [("empirical exponent:", f"{exponent:.2f} (< 5 required)")])


def test_e3_sentence_truth_all_sizes():
    for k in (1, 3, 5):
        assert QueryEngine(interval_chain(k)).truth(SENTENCE)
        assert QueryEngine(interval_chain(k, gap=True)).truth(SENTENCE)


def test_e3_answer_correct(benchmark):
    database = interval_chain(3)
    answer = benchmark(lambda: QueryEngine(database).evaluate(MIXED))
    from fractions import Fraction as F

    # The point 0 is a vertex region itself (not adjacent to itself);
    # points in the open first interval qualify.
    assert answer.contains((F(1, 2),))
    # Points beyond the chain never qualify.
    assert not answer.contains((F(100),))
