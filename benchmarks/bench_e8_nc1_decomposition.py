"""E8 — Appendix A: the NC¹ decomposition on the worked examples.

Figures 7-8: the bounded pentagon decomposes into exactly 3
two-dimensional inner regions, 7 one-dimensional regions (5 outer
boundary edges, 2 inner diagonals from p_low) and 5 vertices.

Figures 9-10: the unbounded wedge decomposes into the paper's regions
plus one extra bounded 1-dimensional region — the chord between the two
cube-boundary clip vertices, which the literal Appendix-A rules produce
but the paper's narrative omits (documented deviation, EXPERIMENTS.md).
"""

from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.regions.nc1 import NC1Decomposition, decompose_nc1


def pentagon() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"),
        parse_formula(
            "y >= 0 & 3*x - 2*y <= 12 & 3*x + 4*y <= 30 & "
            "3*x - 4*y >= -18 & 3*x + 2*y >= 0"
        ),
    )


def wedge() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y <= x & y >= -1")
    )


def test_e8_pentagon_census(benchmark, report):
    regions = benchmark(decompose_nc1, pentagon())
    census: dict[int, int] = {}
    kinds: dict[str, int] = {}
    for region in regions:
        census[region.dimension] = census.get(region.dimension, 0) + 1
        kinds[region.kind] = kinds.get(region.kind, 0) + 1
    assert census == {2: 3, 1: 7, 0: 5}
    one_dim_inner = [
        r for r in regions if r.dimension == 1 and r.kind == "inner"
    ]
    assert len(one_dim_inner) == 2
    report("E8: pentagon decomposition (paper: 3 / 7 / 5)", [
        ("2-dim regions:", census[2]),
        ("1-dim regions:", census[1], f"({len(one_dim_inner)} inner)"),
        ("0-dim regions:", census[0]),
    ])


def test_e8_wedge_census(benchmark, report):
    regions = benchmark(decompose_nc1, wedge())
    census: dict[int, int] = {}
    for region in regions:
        census[region.dimension] = census.get(region.dimension, 0) + 1
    unbounded = [r for r in regions if not r.is_bounded()]
    rays = [r for r in unbounded if r.kind == "ray"]
    hulls = [r for r in unbounded if r.kind == "ray-hull"]
    # Paper's census: {2: 3, 1: 6, 0: 4}; literal rules add the cube
    # chord, one extra bounded 1-dim region.
    assert census == {2: 3, 1: 7, 0: 4}
    assert len(rays) == 2 and len(hulls) == 1
    report("E8: wedge decomposition (paper: 3 / 6 / 4; +1 cube chord)", [
        ("2-dim regions:", census[2], "(2 bounded + 1 unbounded)"),
        ("1-dim regions:", census[1],
         "(paper lists 6; literal rules add the icube chord)"),
        ("0-dim regions:", census[0]),
        ("unbounded rays:", len(rays), "+ 1 ray hull"),
    ])


def test_e8_regions_cover_relation():
    from fractions import Fraction as F

    relation = pentagon()
    decomposition = NC1Decomposition(relation)
    probes = [
        (F(0), F(0)), (F(1), F(1)), (F(2), F(0)), (F(-1), F(5, 2)),
        (F(3), F(3)), (F(5), F(3)),
    ]
    for probe in probes:
        if relation.contains(probe):
            assert decomposition.covers(probe), probe
