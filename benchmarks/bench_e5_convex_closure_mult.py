"""E5 — Section 4 / Figure 5: convex closure defines multiplication.

The reason region quantifiers are restricted to regions of the *input*
relation: with convex closure over derived sets, ``mult(x, y, z)``
becomes definable.  This experiment executes the construction over a
rational grid and confirms it decides multiplication exactly — the
executable form of the inexpressibility warning.
"""

from fractions import Fraction

from repro.extensions.convex_closure import mult_holds

F = Fraction


def grid():
    values = [F(1, 2), F(1), F(3, 2), F(2), F(3), F(7, 2)]
    cases = []
    for x in values:
        for y in values:
            cases.append((x, y, x * y, True))
            cases.append((x, y, x * y + F(1, 3), False))
    return cases


def test_e5_mult_table_exact(report):
    cases = grid()
    wrong = [
        (x, y, z)
        for x, y, z, expected in cases
        if mult_holds(x, y, z) is not expected
    ]
    assert not wrong, wrong
    report("E5: multiplication via convex closure (Figure 5)", [
        ("grid cases checked:", len(cases)),
        ("all decided correctly:", True),
        ("conclusion:", "convex closure over derived regions would "
                        "break FO+LIN closure — hence the restriction"),
    ])


def test_e5_mult_benchmark(benchmark):
    def run():
        hits = 0
        for x, y, z, expected in grid()[:24]:
            if mult_holds(x, y, z) is expected:
                hits += 1
        return hits

    assert benchmark(run) == 24
