"""E6 — the Figure 6 GIS scenario: the RegLFP pollution program.

Builds river maps (polluted, clean, unreachable) and checks the paper's
LFP program returns the intended verdicts; times the polluted run.
"""

from repro.queries.river import river_has_chemical_sequence
from repro.workloads.generators import river_scenario


def test_e6_scenarios(report):
    polluted = river_scenario(6, polluted=True)
    clean = river_scenario(6, polluted=False)
    unreachable = river_scenario(6, polluted=True, reachable=False)

    verdicts = {
        "polluted, reachable": river_has_chemical_sequence(polluted),
        "clean": river_has_chemical_sequence(clean),
        "polluted, unreachable": river_has_chemical_sequence(unreachable),
    }
    assert verdicts["polluted, reachable"] is True
    assert verdicts["clean"] is False
    assert verdicts["polluted, unreachable"] is False
    report("E6: river pollution program (Figure 6)", [
        (name + ":", value) for name, value in verdicts.items()
    ])


def test_e6_polluted_benchmark(benchmark):
    database = river_scenario(6, polluted=True)
    verdict = benchmark.pedantic(
        river_has_chemical_sequence, args=(database,), rounds=1,
        iterations=1,
    )
    assert verdict


def test_e6_longer_river():
    assert river_has_chemical_sequence(river_scenario(8, polluted=True))
