"""E14 — ablation of the formula optimizer (NNF + miniscoping).

Quantifier scopes drive evaluation cost (every region quantifier
multiplies work by |Reg|).  This experiment evaluates queries with
deliberately wide scopes, with and without the optimizer, asserting
semantic agreement and reporting the cost difference.
"""

import time

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.logic.evaluator import Evaluator
from repro.logic.parser import parse_query
from repro.logic.transform import optimize
from repro.twosorted.structure import RegionExtension
from repro.workloads.generators import interval_chain

# A query with a wastefully wide region scope: the second conjunct does
# not mention R, so miniscoping pulls it out of the quantifier.
WIDE = (
    "exists R. (sub(R, S) & (exists x. x = 0 & (x) in R)) "
    "& (forall y. S(y) -> y >= 0)"
)

NESTED = (
    "forall R. sub(R, S) -> "
    "(exists Z. adj(R, Z) & (exists x. S(x) & x >= 0))"
)


def fresh_evaluator(database):
    return Evaluator(RegionExtension.build(database))


def test_e14_agreement_and_speed(report):
    rows = []
    for label, text in (("wide", WIDE), ("nested", NESTED)):
        database = interval_chain(3)
        original = parse_query(text)
        transformed = optimize(original)

        evaluator = fresh_evaluator(database)
        start = time.perf_counter()
        base_answer = evaluator.truth(original)
        base_time = time.perf_counter() - start
        base_evals = evaluator.metrics.get("evaluations")

        evaluator = fresh_evaluator(database)
        start = time.perf_counter()
        opt_answer = evaluator.truth(transformed)
        opt_time = time.perf_counter() - start
        opt_evals = evaluator.metrics.get("evaluations")

        assert base_answer == opt_answer
        rows.append(
            (f"{label}:",
             f"answers agree ({base_answer});",
             f"evals {base_evals} -> {opt_evals};",
             f"time {base_time * 1000:.0f} -> {opt_time * 1000:.0f} ms")
        )
    report("E14: optimizer ablation", rows)


def test_e14_optimizer_never_changes_answers():
    database = interval_chain(2, gap=True)
    queries = [
        "exists x. S(x) & (forall y. S(y) -> y >= 0)",
        "forall x. S(x) -> (exists R. (x) in R & sub(R, S))",
        "!(exists R, Z. adj(R, Z) & sub(R, S) & sub(Z, S))",
    ]
    for text in queries:
        original = parse_query(text)
        transformed = optimize(original)
        evaluator = fresh_evaluator(database)
        assert evaluator.truth(original) == evaluator.truth(transformed)


def test_e14_optimized_benchmark(benchmark):
    database = interval_chain(3)
    formula = optimize(parse_query(WIDE))
    evaluator = fresh_evaluator(database)
    assert benchmark(evaluator.truth, formula)


def test_e14_unoptimized_benchmark(benchmark):
    database = interval_chain(3)
    formula = parse_query(WIDE)
    evaluator = fresh_evaluator(database)
    assert benchmark(evaluator.truth, formula)
