"""E7 — Theorem 6.4: RegLFP captures PTIME.

The constructive content: for every machine and database, the inductive
definition over region tuples (START ∧ COMPUTE ∧ END) reaches the same
verdict as running the machine directly on the encoded database.  Also
checks the small coordinate property precondition on the test databases.
"""

from repro.capture.compiler import capture_run
from repro.capture.machine import (
    machine_contains_one,
    machine_first_symbol_is,
    machine_first_vertex_in_s,
    machine_parity_of_ones,
)
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.logic.properties import has_small_coordinate_property
from repro.twosorted.structure import RegionExtension


def db(text: str, arity: int) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


DATABASES = [
    ("open interval", db("0 < x0 & x0 < 1", 1)),
    ("closed interval", db("0 <= x0 & x0 <= 1", 1)),
    ("interval+point", db("(0 <= x0 & x0 <= 1) | x0 = 3", 1)),
    ("two intervals", db("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)", 1)),
    ("triangle", db("x0 >= 0 & x1 >= 0 & x0 + x1 <= 1", 2)),
]

MACHINES = [
    ("first=1", machine_first_symbol_is("1")),
    ("parity", machine_parity_of_ones()),
    ("has-1", machine_contains_one()),
    ("vertex∈S", machine_first_vertex_in_s()),
]


def test_e7_agreement_matrix(report):
    rows = []
    for db_name, database in DATABASES:
        for m_name, machine in MACHINES:
            result = capture_run(machine, database)
            assert result.agree, (db_name, m_name)
            rows.append(
                (f"{db_name:16} × {m_name:8}:",
                 f"direct={result.direct_accepts}",
                 f"inductive={result.inductive_accepts}",
                 "agree")
            )
    report("E7: capture agreement (Theorem 6.4)", rows)


def test_e7_small_coordinate_property(report):
    rows = []
    for db_name, database in DATABASES:
        extension = RegionExtension.build(database)
        holds = has_small_coordinate_property(extension)
        assert holds, db_name
        rows.append((f"{db_name}:", "small coordinate property holds"))
    report("E7: Definition 6.2 precondition", rows)


def test_e7_capture_benchmark(benchmark):
    database = DATABASES[2][1]
    machine = MACHINES[1][1]
    result = benchmark(capture_run, machine, database)
    assert result.agree


def test_e7_pspace_arm(report):
    """The RegPFP/PSPACE half of Theorem 6.4: a configuration-space PFP
    covers runs exponentially longer than any tuple time-stamp budget,
    in the same polynomial space."""
    from repro.capture.pspace import (
        binary_counter_machine,
        pspace_capture_run,
    )

    machine = binary_counter_machine()
    rows = []
    for value in (8, 32, 128):
        database = db(f"x0 = {value}", 1)
        result = pspace_capture_run(machine, database)
        assert result.agree
        rows.append(
            (f"x0 = {value}:",
             f"{result.pfp_stages} PFP stages in "
             f"{result.space_cells} cells",
             "(beyond time-stamp budget)"
             if result.run_exceeded_ptime_addressing else "")
        )
    assert result.run_exceeded_ptime_addressing
    report("E7: PSPACE arm — PFP stages vs space cells", rows)


def test_e7_pspace_benchmark(benchmark):
    from repro.capture.pspace import (
        binary_counter_machine,
        pspace_capture_run,
    )

    database = db("x0 = 32", 1)
    result = benchmark(
        pspace_capture_run, binary_counter_machine(), database
    )
    assert result.agree
