"""E13 — the introduction's warning: naive element-sort LFP diverges.

"A naive definition of least fixed-point logic leads to a
non-terminating and undecidable language, as it is possible to define
the natural numbers ... over (ℝ, <, +)."  We run that induction with
growing stage caps and watch the representation grow linearly forever,
while a semi-linear induction converges and the region-sort LFP
terminates within its |Reg|^k bound on every input.
"""

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.logic.evaluator import Evaluator
from repro.logic.parser import parse_query
from repro.naive.element_fixpoint import (
    bounded_saturation_body,
    define_naturals_body,
    naive_lfp,
)
from repro.twosorted.structure import RegionExtension


def test_e13_naturals_diverge(report):
    rows = []
    sizes = []
    for cap in (4, 8, 12, 16):
        result = naive_lfp(("n",), define_naturals_body, max_stages=cap)
        assert result.diverged
        sizes.append(result.last_stage.representation_size())
        rows.append(
            (f"stage cap {cap}:", "diverged,",
             f"representation size {sizes[-1]}")
        )
    # Strictly growing representation: no convergence in sight.
    assert sizes == sorted(sizes) and sizes[0] < sizes[-1]
    report("E13: naive LFP defines ℕ and never converges", rows)


def test_e13_semilinear_induction_converges(report):
    result = naive_lfp(("n",), bounded_saturation_body, max_stages=10)
    assert result.converged
    report("E13: semi-linear induction converges", [
        ("stages:", result.stages),
        ("fixed point:", str(result.fixpoint)),
    ])


def test_e13_region_lfp_always_terminates(report):
    rows = []
    for text in ("0 <= x0 & x0 <= 3",
                 "(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"):
        database = ConstraintDatabase.from_formula(
            parse_formula(text), 1
        )
        extension = RegionExtension.build(database)
        evaluator = Evaluator(extension)
        evaluator.truth(parse_query(
            "exists X, Y. [lfp M(R, Rp). (R = Rp) | "
            "(exists Z. M(R, Z) & adj(Z, Rp))](X, Y)"
        ))
        bound = len(extension.regions) ** 2
        assert evaluator.metrics.get("fixpoint_stages") <= bound
        rows.append(
            (f"|Reg| = {len(extension.regions)}:",
             f"{evaluator.metrics.get('fixpoint_stages')} stages",
             f"(bound {bound})")
        )
    report("E13: region-sort LFP terminates within |Reg|^k", rows)


def test_e13_divergence_benchmark(benchmark):
    result = benchmark(
        naive_lfp, ("n",), define_naturals_body, 8
    )
    assert result.diverged
