"""E12 — the Section 2 size model: representation growth under algebra.

Constraint query answers must stay finitely represented; this experiment
measures how representation size evolves under composed operations and
shows the effect of the two complement strategies (pruned product vs
arrangement-cell enumeration) and of disjunct simplification.
"""

import time

from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.constraints.simplify import (
    cell_complement,
    negate_dnf,
    prune_disjuncts,
)
from repro.workloads.generators import interval_chain

from conftest import empirical_exponent


def chain_relation(k: int) -> ConstraintRelation:
    return interval_chain(k).spatial


def test_e12_complement_strategies_agree(report):
    rows = []
    for k in (1, 2, 3):
        relation = chain_relation(k)
        disjuncts = relation.disjuncts()
        product = negate_dnf(disjuncts)
        cells = cell_complement(disjuncts, relation.variables)
        from repro.constraints.relation import relation_from_disjuncts

        a = relation_from_disjuncts(relation.variables, product)
        b = relation_from_disjuncts(relation.variables, cells)
        assert a.equivalent(b)
        rows.append(
            (f"k={k}:",
             f"pruned-product: {len(product)} disjuncts,",
             f"cells: {len(cells)} disjuncts")
        )
    report("E12: complement strategies agree", rows)


def test_e12_growth_under_composition(report):
    sizes, answer_sizes = [], []
    rows = []
    for k in (1, 2, 4, 8):
        relation = chain_relation(k)
        # complement ∘ complement should stay near the input size.
        roundtrip = relation.complement().complement()
        assert roundtrip.equivalent(relation)
        sizes.append(relation.representation_size())
        answer_sizes.append(roundtrip.representation_size())
        rows.append(
            (f"k={k}:", f"input size {sizes[-1]},",
             f"double-complement size {answer_sizes[-1]}")
        )
    exponent = empirical_exponent(sizes, answer_sizes)
    rows.append(("size exponent:", f"{exponent:.2f} (< 2 required)"))
    assert exponent < 2.0
    report("E12: representation growth under ¬¬", rows)


def test_e12_simplify_drops_dead_disjuncts(report):
    text = " | ".join(
        [f"(x0 > {i} & x0 < {i})" for i in range(5)]
        + ["(0 < x0 & x0 < 1)"]
    )
    relation = ConstraintRelation.make(("x0",), parse_formula(text))
    simplified = relation.simplify()
    assert len(relation.disjuncts()) == 6
    assert len(simplified.disjuncts()) == 1
    assert simplified.equivalent(relation)
    report("E12: simplification", [
        ("input disjuncts:", len(relation.disjuncts())),
        ("after simplify:", len(simplified.disjuncts())),
    ])


def test_e12_projection_cost_scaling(report):
    rows = []
    sizes, times = [], []
    for k in (2, 4, 8, 16):
        relation = chain_relation(k)
        two_var = ConstraintRelation.make(
            ("x0", "y"),
            parse_formula(
                " | ".join(
                    f"({i} <= x0 & x0 <= {i + 1} & y = x0)"
                    for i in range(k)
                )
            ),
        )
        start = time.perf_counter()
        projected = two_var.project_out("y")
        elapsed = time.perf_counter() - start
        assert projected.equivalent(relation)
        sizes.append(k)
        times.append(elapsed)
        rows.append((f"k={k}:", f"{elapsed * 1000:.1f} ms"))
    exponent = empirical_exponent(sizes, times)
    rows.append(("time exponent:", f"{exponent:.2f} (< 3 required)"))
    assert exponent < 3.0
    report("E12: Fourier–Motzkin projection scaling", rows)


def test_e12_union_prune_benchmark(benchmark):
    relation = chain_relation(6)
    disjuncts = list(relation.disjuncts()) * 3
    pruned = benchmark(prune_disjuncts, disjuncts)
    assert len(pruned) == 6
