"""E1 — the running example of Section 3 (Figures 1-4).

Reproduces the paper's worked example: a relation whose hyperplane set
𝕳(S) is three lines in general position; its arrangement A(S) has
exactly 7 two-dimensional faces, 9 one-dimensional faces and 3 vertices;
each vertex's incidence neighbourhood contains ∅ below and four edges
above (Figure 4).
"""

import time

from repro.arrangement.builder import build_arrangement
from repro.arrangement.incidence import EMPTY_FACE, IncidenceGraph
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.engine import EngineCache, QueryEngine
from repro.obs.metrics import MetricsRegistry


def running_example() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


def test_e1_arrangement_census(benchmark, report):
    relation = running_example()
    arrangement = benchmark(build_arrangement, relation)

    census = arrangement.face_count_by_dimension()
    assert census == {2: 7, 1: 9, 0: 3}, census
    assert len(arrangement) == 19

    inside = [f for f in arrangement if f.in_relation]
    assert len(inside) == 7  # interior + 3 edges + 3 vertices

    report("E1: A(S) face census (paper: 7 / 9 / 3)", [
        ("dimension 2:", census[2]),
        ("dimension 1:", census[1]),
        ("dimension 0:", census[0]),
        ("faces contained in S:", len(inside)),
    ])


def test_e1_incidence_neighbourhood(benchmark, report):
    relation = running_example()
    arrangement = build_arrangement(relation)
    graph = benchmark(IncidenceGraph.build, arrangement)

    rows = []
    for vertex in arrangement.vertices:
        about = graph.neighbourhood(vertex.index)
        assert about["down"] == (EMPTY_FACE,)
        assert len(about["up"]) == 4
        rows.append(
            (f"vertex {tuple(map(str, vertex.sample))}:",
             "down:", about["down"], "up:", about["up"])
        )
    report("E1: incidence neighbourhoods (Figure 4 shape)", rows)


def test_e1_engine_cache_reuses_arrangement(report):
    """Re-running the same query through fresh engines hits the cache.

    The first run pays for the Theorem-3.1 construction; the second
    engine (same database content, new objects) resolves the region
    extension from the cross-query cache and must be measurably faster.
    """
    query = "exists x, y. S(x, y)"
    cache = EngineCache(metrics=MetricsRegistry())

    def run() -> float:
        database = ConstraintDatabase.make({"S": running_example()})
        engine = QueryEngine(database, cache=cache)
        start = time.perf_counter()
        assert engine.truth(query)
        return time.perf_counter() - start

    cold = run()
    warm = run()

    stats = cache.stats()
    assert stats["extension_misses"] == 1
    assert stats["extension_hits"] == 1
    assert stats["arrangement_misses"] == 1
    assert warm < cold

    report("E1: cross-query arrangement cache", [
        ("cold run:", f"{cold * 1000:.2f} ms"),
        ("warm run:", f"{warm * 1000:.2f} ms"),
        ("speedup:", f"{cold / max(warm, 1e-9):.1f}x"),
        ("extension hits/misses:",
         f"{stats['extension_hits']}/{stats['extension_misses']}"),
    ])
