"""E1 — the running example of Section 3 (Figures 1-4).

Reproduces the paper's worked example: a relation whose hyperplane set
𝕳(S) is three lines in general position; its arrangement A(S) has
exactly 7 two-dimensional faces, 9 one-dimensional faces and 3 vertices;
each vertex's incidence neighbourhood contains ∅ below and four edges
above (Figure 4).
"""

from repro.arrangement.builder import build_arrangement
from repro.arrangement.incidence import EMPTY_FACE, IncidenceGraph
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation


def running_example() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


def test_e1_arrangement_census(benchmark, report):
    relation = running_example()
    arrangement = benchmark(build_arrangement, relation)

    census = arrangement.face_count_by_dimension()
    assert census == {2: 7, 1: 9, 0: 3}, census
    assert len(arrangement) == 19

    inside = [f for f in arrangement if f.in_relation]
    assert len(inside) == 7  # interior + 3 edges + 3 vertices

    report("E1: A(S) face census (paper: 7 / 9 / 3)", [
        ("dimension 2:", census[2]),
        ("dimension 1:", census[1]),
        ("dimension 0:", census[0]),
        ("faces contained in S:", len(inside)),
    ])


def test_e1_incidence_neighbourhood(benchmark, report):
    relation = running_example()
    arrangement = build_arrangement(relation)
    graph = benchmark(IncidenceGraph.build, arrangement)

    rows = []
    for vertex in arrangement.vertices:
        about = graph.neighbourhood(vertex.index)
        assert about["down"] == (EMPTY_FACE,)
        assert len(about["up"]) == 4
        rows.append(
            (f"vertex {tuple(map(str, vertex.sample))}:",
             "down:", about["down"], "up:", about["up"])
        )
    report("E1: incidence neighbourhoods (Figure 4 shape)", rows)
