"""SERVER — cold vs warm latency of the async query service.

The server's reason to exist is that the expensive artifacts —
arrangements, region extensions, answer relations — are shared: across
requests (one ``EngineCache``), across engines (the pool) and across
process restarts (the disk store).  This benchmark measures exactly
that claim end-to-end over real HTTP:

* **cold** — a fresh service on an empty disk store; every database
  pays for its arrangement and extension builds.
* **warm** — a *new* service (fresh in-memory cache) over the same
  store directory, driven twice: the first pass warm-starts from disk
  (store hits), the second hits the in-memory engine cache.

The record (``BENCH_SERVER.json``) carries client-side p50/p99
latency and QPS per phase, the server's own cache/store counters, and
— scraped from ``GET /metrics`` — the *server-side* per-endpoint
p50/p90/p99 derived from the request-latency histogram buckets, so
client-observed and server-observed latency can be compared in one
record; ``warm_beats_cold`` asserts the architecture pays for itself.

Run as a script to (re)generate the committed record::

    PYTHONPATH=src python benchmarks/bench_server.py --output BENCH_SERVER.json
"""

from __future__ import annotations

import re
import time
from typing import Any

from repro.config import EngineConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryRegistry, bucket_quantile
from repro.server import ConstraintService, ServerThread, run_load
from repro.server.loadgen import get_json, get_text, percentile
from repro.workloads.generators import interval_chain

#: Databases served: distinct interval chains (distinct fingerprints).
SEGMENTS = (2, 3, 4, 5)

#: Queries every database is asked, per phase.
QUERIES = (
    "S(x0)",
    "exists y. S(y) & x0 - y <= 1 & y - x0 <= 1",
)


_BUCKET_LINE = re.compile(
    r"^repro_server_request_seconds_bucket\{(?P<labels>[^}]*)\} "
    r"(?P<value>\S+)$"
)


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    for part in text.split(","):
        key, __, value = part.partition("=")
        labels[key.strip()] = value.strip().strip('"')
    return labels


def server_latency_quantiles(
    metrics_text: str,
) -> dict[str, dict[str, Any]]:
    """Per-endpoint p50/p90/p99 (ms) from scraped ``/metrics`` text.

    Parses the ``repro_server_request_seconds_bucket`` families, sums
    cumulative bucket counts across tenants per endpoint (cumulative
    counts are additive), and interpolates quantiles with the same
    :func:`bucket_quantile` the server's histograms use.
    """
    buckets: dict[str, dict[float, int]] = {}
    for line in metrics_text.splitlines():
        match = _BUCKET_LINE.match(line)
        if match is None:
            continue
        labels = _parse_labels(match.group("labels"))
        endpoint = labels.get("endpoint", "")
        upper = float(labels["le"])
        per_endpoint = buckets.setdefault(endpoint, {})
        per_endpoint[upper] = (
            per_endpoint.get(upper, 0) + int(float(match.group("value")))
        )
    quantiles: dict[str, dict[str, Any]] = {}
    for endpoint, cumulative_by_upper in sorted(buckets.items()):
        uppers = sorted(u for u in cumulative_by_upper if u != float("inf"))
        cumulative = [cumulative_by_upper[u] for u in uppers]
        cumulative.append(cumulative_by_upper.get(float("inf"), 0))
        count = cumulative[-1]
        if count == 0:
            continue
        quantiles[endpoint] = {
            "count": count,
            "p50_ms": round(bucket_quantile(uppers, cumulative, 0.50) * 1000, 3),
            "p90_ms": round(bucket_quantile(uppers, cumulative, 0.90) * 1000, 3),
            "p99_ms": round(bucket_quantile(uppers, cumulative, 0.99) * 1000, 3),
        }
    return quantiles


def _phase(
    service: ConstraintService,
    requests: list[dict[str, Any]],
    concurrency: int,
    passes: int,
) -> dict[str, Any]:
    """Drive one phase over HTTP; client-side latencies + server stats."""
    with ServerThread(service) as server:
        started = time.perf_counter()
        results = []
        for _pass in range(passes):
            results.extend(
                run_load(server.port, requests, concurrency=concurrency)
            )
        wall_s = time.perf_counter() - started
        __, stats = get_json(server.port, "/v1/stats")
        __, metrics_text = get_text(server.port, "/metrics")
    failures = [r for r in results if r["status"] != 200]
    latencies = [r["wall_s"] for r in results]
    return {
        "requests": len(results),
        "failures": len(failures),
        "wall_s": round(wall_s, 4),
        "qps": round(len(results) / wall_s, 2),
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
        "endpoints": server_latency_quantiles(metrics_text),
        "stats": stats,
    }


def run_bench_server(
    store_dir: str,
    concurrency: int = 4,
    max_concurrent: int = 4,
) -> dict[str, Any]:
    """The full cold/warm comparison; returns the JSON-ready record."""
    from repro.bench import _metadata

    databases = {
        f"chain{k}": interval_chain(k) for k in SEGMENTS
    }
    requests = [
        {"database": name, "query": query}
        for name in databases
        for query in QUERIES
    ]
    config = EngineConfig.resolve(
        cache_dir=store_dir, jobs=1, metrics_labels="on"
    )

    cold_service = ConstraintService(
        dict(databases), config,
        max_concurrent=max_concurrent, metrics=MetricsRegistry(),
        telemetry=TelemetryRegistry(),
    )
    cold = _phase(cold_service, requests, concurrency, passes=1)

    # A fresh service (empty in-memory cache) over the now-populated
    # store: pass 1 warm-starts from disk, pass 2 hits the engine cache.
    warm_service = ConstraintService(
        dict(databases), config,
        max_concurrent=max_concurrent, metrics=MetricsRegistry(),
        telemetry=TelemetryRegistry(),
    )
    warm = _phase(warm_service, requests, concurrency, passes=2)

    warm_cache = warm["stats"]["pool"]["engine_cache"]
    warm_store = warm["stats"]["store"] or {}
    record = {
        "benchmark": "SERVER",
        "subject": "async service cold vs warm (pool + cache + store)",
        "databases": sorted(databases),
        "queries": list(QUERIES),
        "concurrency": concurrency,
        "max_concurrent": max_concurrent,
        "cold": cold,
        "warm": warm,
        "warm_beats_cold": warm["p50_ms"] < cold["p50_ms"],
        "engine_cache_hits": (
            warm_cache["arrangement_hits"] + warm_cache["extension_hits"]
        ),
        "store_hits": warm_store.get("hits", 0),
        "all_match": cold["failures"] == 0 and warm["failures"] == 0,
        "metadata": _metadata(jobs=1),
    }
    return record


def test_server_cold_vs_warm(tmp_path, report):
    record = run_bench_server(str(tmp_path / "store"))
    assert record["all_match"], "every request must return 200"
    assert record["warm_beats_cold"], (
        f"warm p50 {record['warm']['p50_ms']}ms should beat "
        f"cold p50 {record['cold']['p50_ms']}ms"
    )
    assert record["store_hits"] > 0, "warm phase must hit the disk store"
    assert record["engine_cache_hits"] > 0, (
        "second warm pass must hit the in-memory engine cache"
    )
    for phase_name in ("cold", "warm"):
        endpoints = record[phase_name]["endpoints"]
        assert "/v1/query" in endpoints, (
            f"{phase_name} /metrics scrape must yield /v1/query buckets"
        )
        assert endpoints["/v1/query"]["count"] >= len(record["queries"])
    report(
        "SERVER: cold vs warm over HTTP",
        [
            ("cold:", f"p50 {record['cold']['p50_ms']}ms",
             f"p99 {record['cold']['p99_ms']}ms",
             f"{record['cold']['qps']} qps"),
            ("warm:", f"p50 {record['warm']['p50_ms']}ms",
             f"p99 {record['warm']['p99_ms']}ms",
             f"{record['warm']['qps']} qps"),
            ("hits:", f"store {record['store_hits']},",
             f"engine cache {record['engine_cache_hits']}"),
        ],
    )


if __name__ == "__main__":  # pragma: no cover - script entry
    import argparse
    import json
    import tempfile

    from repro.bench import write_record

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the record to PATH as JSON")
    parser.add_argument("--concurrency", type=int, default=4)
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="repro-bench-server-") as tmp:
        record = run_bench_server(tmp, concurrency=args.concurrency)
    print(json.dumps(record, indent=2))
    if args.output:
        write_record(record, args.output)
    raise SystemExit(
        0 if record["all_match"] and record["warm_beats_cold"] else 1
    )
