"""E16 — incremental view maintenance under writes.

The paper's queries are defined over a static database; the
maintenance layer (:mod:`repro.incremental`) serves *writes* without
giving up the static story's guarantees.  This experiment holds the
maintenance path to the honest oracle — a full interpreted rebuild —
in both directions: the answers must be byte-identical, and the
update-time speedup must be real (≥5× on single-segment writes
against a standing k=32 reachability database).
"""

from fractions import Fraction

from repro.arrangement.builder import build_arrangement
from repro.datalog import evaluate_program
from repro.datalog.parser import parse_program
from repro.incremental import (
    MaintainedArrangements,
    MaintainedProgram,
    apply_delta,
    invert,
    make_delta,
)
from repro.workloads.generators import interval_chain

F = Fraction

REACH = parse_program(
    """
    Reach(x) :- S(x), x = 0.
    Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.
    """
)


def _signature(arrangement):
    return sorted(
        (face.signs, face.dimension, face.in_relation)
        for face in arrangement.faces
    )


def test_e16_maintained_fixpoint_is_byte_identical(report):
    """The maintained program's answers equal the interpreted oracle's
    byte for byte across a chain of writes."""
    base = interval_chain(3)
    maintained = MaintainedProgram(REACH, base, max_stages=40)
    rows = []
    database = base
    for step in range(3):
        segment = 3 + step
        database = apply_delta(database, make_delta((
            "insert", "S",
            f"({segment} <= x0 & x0 <= {segment + 1})",
        )))
        outcome = maintained.apply(database)
        oracle = evaluate_program(
            REACH, database, max_stages=40,
            strategy="seminaive", executor="interpreted",
        )
        assert outcome.stages == oracle.stages
        assert outcome.stage_sizes == oracle.stage_sizes
        for predicate in outcome.relations:
            assert str(outcome[predicate].formula) == str(
                oracle[predicate].formula
            )
        rows.append(
            (f"after write {step + 1}:",
             f"{outcome.stages} stages,",
             "byte-identical to the interpreted rebuild")
        )
    report("E16: maintained fixpoint ≡ interpreted rebuild", rows)


def test_e16_maintained_arrangement_matches_batch():
    """Plane-delta maintenance (insert, retract, reorder) lands on the
    batch arrangement's combinatorics at every version."""
    base = interval_chain(4)
    arrangements = MaintainedArrangements()
    old = base.relation("S")
    arrangements.adopt(old, build_arrangement(old))
    delta = make_delta(("insert", "S", "(6 <= x0 & x0 <= 7)"))
    for step_delta in (delta, invert(delta)):
        new_db = apply_delta(base, step_delta)
        new = new_db.relation("S")
        maintained = arrangements.update(
            old, new, build_old=lambda: build_arrangement(old)
        )
        batch = build_arrangement(new)
        assert maintained.hyperplanes == batch.hyperplanes
        assert _signature(maintained) == _signature(batch)
        base, old = new_db, new


def test_e16_update_vs_rebuild(report):
    """Before/after mode: maintenance vs full-rebuild oracle.

    The default run uses a small check-only configuration to guard
    byte-identity without timing noise.  Set ``REPRO_BENCH_RECORD=1``
    to sweep update sizes {1, 4, 16} against the standing k=32 chain,
    assert the ≥5× single-fact target and write ``BENCH_E16.json``
    (this is how the committed record is produced)."""
    import os

    from repro.bench import run_bench_e16, write_record

    record_mode = bool(os.environ.get("REPRO_BENCH_RECORD"))
    if record_mode:
        record = run_bench_e16(sizes=(1, 4, 16))
    else:
        record = run_bench_e16(sizes=(1, 2), check_only=True)
    assert record["all_match"], record
    if record_mode:
        for row in record["results"]:
            if row["update"] == 1:
                assert row["meets_target"], row
        write_record(record, "BENCH_E16.json")
    report("E16: incremental maintenance vs full rebuild", [
        (f"update={row['update']} (k={row['k']}):",
         f"rebuild {row['baseline_s'] * 1000:.0f} ms,",
         f"maintained {row['fast_s'] * 1000:.0f} ms,",
         f"speedup {row['speedup']}x")
        for row in record["results"]
    ])
