"""E9 — Theorems 7.3/7.4: the transitive-closure logics.

RegTC and RegDTC agree with RegLFP on connectivity; the TC evaluation is
cheaper per database than the LFP induction (one reachability pass over
Reg^m instead of up to |Reg|^k monotone stages), which this experiment
measures.  Both the arrangement and the NC¹ decomposition are exercised
(Section 7 pairs the TC logics with the latter).
"""

import time

from repro.queries.connectivity import is_connected
from repro.workloads.generators import interval_chain

from conftest import empirical_exponent


def test_e9_tc_agrees_with_lfp(report):
    rows = []
    for k in (1, 2, 3):
        for gap in (False, True):
            database = interval_chain(k, gap=gap)
            lfp = is_connected(database, "lfp")
            tc = is_connected(database, "tc")
            assert lfp == tc
            rows.append(
                (f"chain k={k} gap={gap}:", f"lfp={lfp}", f"tc={tc}")
            )
    report("E9: RegTC vs RegLFP verdicts", rows)


def test_e9_tc_on_nc1_decomposition():
    assert is_connected(interval_chain(2), "tc", decomposition="nc1")
    assert not is_connected(
        interval_chain(2, gap=True), "tc", decomposition="nc1"
    )


def test_e9_tc_vs_lfp_times(report):
    rows = []
    tc_times, lfp_times, sizes = [], [], []
    for k in (1, 2, 3):
        database = interval_chain(k)
        start = time.perf_counter()
        assert is_connected(database, "tc")
        tc_time = time.perf_counter() - start
        start = time.perf_counter()
        assert is_connected(database, "lfp")
        lfp_time = time.perf_counter() - start
        sizes.append(database.size())
        tc_times.append(tc_time)
        lfp_times.append(lfp_time)
        rows.append(
            (f"k={k}:", f"tc={tc_time * 1000:.0f} ms",
             f"lfp={lfp_time * 1000:.0f} ms")
        )
    exponent = empirical_exponent(sizes, tc_times)
    rows.append(("tc empirical exponent:", f"{exponent:.2f}"))
    assert exponent < 6.0
    report("E9: TC vs LFP connectivity cost", rows)


def test_e9_tc_benchmark(benchmark):
    database = interval_chain(2)
    verdict = benchmark(is_connected, database, "tc")
    assert verdict


def test_e9_dtc_semantics():
    """DTC only walks unique-successor edges, so it reaches no more than
    TC does."""
    from repro.logic.evaluator import Evaluator
    from repro.logic.parser import parse_query
    from repro.twosorted.structure import RegionExtension

    database = interval_chain(2)
    extension = RegionExtension.build(database)
    evaluator = Evaluator(extension)
    tc = parse_query(
        "exists X, Y. X != Y & [tc R -> Rp. adj(R, Rp)](X; Y)"
    )
    dtc = parse_query(
        "exists X, Y. X != Y & [dtc R -> Rp. adj(R, Rp)](X; Y)"
    )
    tc_holds = evaluator.truth(tc)
    dtc_holds = evaluator.truth(dtc)
    assert tc_holds
    if dtc_holds:
        assert tc_holds
