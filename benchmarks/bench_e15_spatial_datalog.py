"""E15 — spatial datalog (the paper's related work, Geerts & Kuijpers).

The paper positions its region languages against spatial datalog:
connectivity-style recursion *can* terminate there on good inputs, but
the language has no termination guarantee.  This experiment runs a
unit-step reachability program on bounded inputs (terminates, matches
the region-logic component), and the successor program on an unbounded
domain (diverges at the stage cap), with the region-sort LFP as the
always-terminating contrast.
"""

from fractions import Fraction

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.datalog import evaluate_program
from repro.datalog.parser import parse_program
from repro.queries.reachability import connected_component
from repro.workloads.generators import interval_chain

F = Fraction

REACH = parse_program(
    """
    Reach(x) :- S(x), x = 0.
    Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.
    """
)

SUCCESSOR = parse_program(
    """
    P(x) :- S(x), x = 0.
    P(y) :- P(x), S(y), y = x + 1.
    """
)


def db(text: str) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), 1)


def test_e15_reach_terminates_and_matches_component(report):
    rows = []
    for k in (1, 2, 3):
        database = interval_chain(k)
        outcome = evaluate_program(REACH, database)
        assert outcome.converged
        component = connected_component(database, (F(0),))
        assert outcome["Reach"].rename_to(("x0",)).equivalent(component)
        rows.append(
            (f"chain k={k}:",
             f"converged in {outcome.stages} stages,",
             "matches region-logic component")
        )
    report("E15: datalog reach vs region-logic component", rows)


def test_e15_reach_respects_gaps():
    # Gap of width 2 — wider than the unit step, so unreachable.
    database = db("(0 <= x0 & x0 <= 1) | (3 <= x0 & x0 <= 4)")
    outcome = evaluate_program(REACH, database)
    assert outcome.converged
    assert outcome["Reach"].contains((F(1),))
    assert not outcome["Reach"].contains((F(3),))


def test_e15_successor_diverges_unbounded(report):
    outcome = evaluate_program(SUCCESSOR, db("x0 >= 0"), max_stages=8)
    assert not outcome.converged
    report("E15: datalog has no termination guarantee", [
        ("successor program on x >= 0:",
         f"diverged at the stage cap ({outcome.stages} stages),",
         f"sizes {outcome.stage_sizes}"),
        ("the region-sort languages:", "terminate on every input "
         "(Theorems 4.3/6.1)"),
    ])


def test_e15_successor_converges_bounded():
    outcome = evaluate_program(SUCCESSOR, db("0 <= x0 & x0 <= 4"))
    assert outcome.converged
    assert outcome["P"].contains((F(4),))
    assert not outcome["P"].contains((F(1, 2),))


def test_e15_reach_benchmark(benchmark):
    database = interval_chain(2)
    outcome = benchmark(evaluate_program, REACH, database)
    assert outcome.converged


def test_e15_seminaive_agrees_with_naive(report):
    """Semi-naive delta evaluation is a pure speedup: identical IDB
    relations and stage counts on both converging and diverging runs."""
    rows = []
    for k in (1, 2, 3):
        database = interval_chain(k)
        naive = evaluate_program(REACH, database, strategy="naive")
        fast = evaluate_program(REACH, database, strategy="seminaive")
        assert fast.converged == naive.converged
        assert fast.stages == naive.stages
        for predicate in fast.relations:
            assert fast[predicate].equivalent(naive[predicate])
        rows.append(
            (f"chain k={k}:",
             f"both converge in {fast.stages} stages,",
             "identical Reach relation")
        )
    report("E15: semi-naive ≡ naive evaluation", rows)


def test_e15_seminaive_agrees_on_divergence():
    database = db("x0 >= 0")
    naive = evaluate_program(
        SUCCESSOR, database, max_stages=8, strategy="naive"
    )
    fast = evaluate_program(
        SUCCESSOR, database, max_stages=8, strategy="seminaive"
    )
    assert not naive.converged and not fast.converged
    assert fast.stages == naive.stages == 8
    assert fast["P"].equivalent(naive["P"])


def test_e15_executors_agree_small_chains(report):
    """The compiled IR executor is byte-identical to the interpreted
    semi-naive engine on small chains, including the divergent
    successor program."""
    rows = []
    for k in (1, 2, 3):
        database = interval_chain(k)
        interpreted = evaluate_program(
            REACH, database, executor="interpreted"
        )
        compiled = evaluate_program(REACH, database, executor="compiled")
        assert compiled.converged == interpreted.converged
        assert compiled.stages == interpreted.stages
        assert compiled.stage_sizes == interpreted.stage_sizes
        for predicate in compiled.relations:
            assert str(compiled[predicate].formula) == str(
                interpreted[predicate].formula
            )
        rows.append(
            (f"chain k={k}:",
             f"both executors converge in {compiled.stages} stages,",
             "byte-identical Reach relation")
        )
    diverging_db = db("x0 >= 0")
    interpreted = evaluate_program(
        SUCCESSOR, diverging_db, max_stages=8, executor="interpreted"
    )
    compiled = evaluate_program(
        SUCCESSOR, diverging_db, max_stages=8, executor="compiled"
    )
    assert not compiled.converged and not interpreted.converged
    assert str(compiled["P"].formula) == str(interpreted["P"].formula)
    report("E15: compiled ≡ interpreted executor", rows)


def test_e15_before_after_executors(report):
    """Before/after mode: interpreted vs compiled semi-naive executors.

    The default run uses a small check-only ladder to guard byte-
    identity without timing noise.  Set ``REPRO_BENCH_RECORD=1`` to
    sweep the full k ∈ {16, 32, 64} ladder, assert the >= 5x compiled
    speedup at k >= 32 and write ``BENCH_E15.json`` (this is how the
    committed record is produced)."""
    import os

    from repro.bench import run_bench_e15, write_record

    record_mode = bool(os.environ.get("REPRO_BENCH_RECORD"))
    if record_mode:
        record = run_bench_e15(sizes=(16, 32, 64))
    else:
        record = run_bench_e15(sizes=(2, 4), check_only=True)
    assert record["all_match"], record
    if record_mode:
        for row in record["results"]:
            if row["k"] >= 32:
                assert row["meets_target"], row
        write_record(record, "BENCH_E15.json")
    report("E15: interpreted vs compiled executor", [
        (f"k={row['k']}:",
         f"interpreted {row['baseline_s'] * 1000:.0f} ms,",
         f"compiled {row['fast_s'] * 1000:.0f} ms,",
         f"{row['stages']} stages")
        for row in record["results"]
    ])
