"""Shared fixtures and helpers for the experiment benchmarks.

Every experiment file ``bench_eNN_*.py`` reproduces one item of
EXPERIMENTS.md: it asserts the *shape* the paper predicts (face
censuses, query verdicts, agreement of methods, polynomial growth) and
times the central computation with pytest-benchmark.
"""

from __future__ import annotations

import math

import pytest


def empirical_exponent(sizes, times) -> float:
    """Least-squares slope of log(time) against log(size).

    The scaling experiments assert this stays below the theorem's
    polynomial degree (plus slack for constant factors at small sizes).
    """
    pairs = [
        (math.log(s), math.log(t))
        for s, t in zip(sizes, times)
        if t > 0
    ]
    if len(pairs) < 2:
        raise ValueError("need at least two measurements")
    n = len(pairs)
    mean_x = sum(x for x, __ in pairs) / n
    mean_y = sum(y for __, y in pairs) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    den = sum((x - mean_x) ** 2 for x, __ in pairs)
    return num / den


@pytest.fixture
def report(capsys):
    """Print a small results table that survives pytest's capture."""

    def emit(title: str, rows: list[tuple]) -> None:
        with capsys.disabled():
            print(f"\n[{title}]")
            for row in rows:
                print("   ", *row)

    return emit
