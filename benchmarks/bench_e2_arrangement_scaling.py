"""E2 — Theorem 3.1: arrangements are PTIME computable.

Builds arrangements of n generic lines (tangents to a parabola, so all
pairwise intersection points are distinct) and of n points on the line,
checks the exact combinatorial face counts, and asserts that measured
construction time scales polynomially: the empirical log-log exponent
stays well below a fixed constant.
"""

import time

from repro.arrangement.builder import build_arrangement
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.simplex import clear_feasibility_cache
from repro.obs.metrics import get_registry

from conftest import empirical_exponent


def generic_lines(n: int) -> list[Hyperplane]:
    """Tangents y = 2ix - i² to the parabola: pairwise generic."""
    return [Hyperplane.make([2 * i, -1], i * i) for i in range(1, n + 1)]


def expected_faces_2d(n: int) -> int:
    """Faces of n generic lines: C(n,2) vertices + n² edges +
    (1 + n + C(n,2)) regions."""
    pairs = n * (n - 1) // 2
    return pairs + n * n + 1 + n + pairs


def test_e2_generic_line_counts(report):
    rows = []
    for n in (2, 3, 4, 5):
        arrangement = build_arrangement(
            hyperplanes=generic_lines(n), dimension=2
        )
        assert len(arrangement) == expected_faces_2d(n), n
        rows.append((f"n={n}:", len(arrangement), "faces (exact formula)"))
    report("E2: generic 2-D arrangements match theory", rows)


def test_e2_scaling_dimension_1(report):
    sizes, times = [], []
    for n in (4, 8, 16, 32):
        planes = [Hyperplane.make([1], i) for i in range(n)]
        clear_feasibility_cache()
        start = time.perf_counter()
        arrangement = build_arrangement(hyperplanes=planes, dimension=1)
        times.append(time.perf_counter() - start)
        sizes.append(n)
        assert len(arrangement) == 2 * n + 1
    exponent = empirical_exponent(sizes, times)
    # O(n) levels × O(n) faces × O(n) constraint scans: cubic envelope.
    assert exponent < 4.0, exponent
    report("E2: 1-D scaling (Theorem 3.1)", [
        (f"n={n}:", f"{t * 1000:.1f} ms") for n, t in zip(sizes, times)
    ] + [("empirical exponent:", f"{exponent:.2f} (< 4 required)")])


def test_e2_scaling_dimension_2(report):
    # Start at n=4: the n=2 build is microseconds-level and its noise
    # dominates a log-log fit.
    registry = get_registry()
    sizes, times, solves = [], [], []
    for n in (4, 6, 8, 10):
        before = registry.get("lp.solves") + registry.get("lp.cache_hits")
        clear_feasibility_cache()
        start = time.perf_counter()
        arrangement = build_arrangement(
            hyperplanes=generic_lines(n), dimension=2
        )
        times.append(time.perf_counter() - start)
        sizes.append(n)
        # solves alone depend on cache warmth from earlier tests; the
        # total number of feasibility queries is deterministic.
        solves.append(
            registry.get("lp.solves")
            + registry.get("lp.cache_hits")
            - before
        )
        assert len(arrangement) == expected_faces_2d(n)
    # Feasibility queries: Θ(n) tree levels × Θ(n²) faces ⇒ cubic.
    solve_exponent = empirical_exponent(sizes, solves)
    assert solve_exponent < 3.6, solve_exponent
    exponent = empirical_exponent(sizes, times)
    # Θ(n²) faces, O(n)-row LPs with simplex pivots that also grow with
    # n: a degree-4-to-5 envelope; the point of Theorem 3.1 is that it
    # stays polynomial at all, so assert a fixed-degree ceiling.
    assert exponent < 5.5, exponent
    report("E2: 2-D scaling (Theorem 3.1)", [
        (f"n={n}:", f"{t * 1000:.1f} ms,", f"{s} feasibility queries")
        for n, t, s in zip(sizes, times, solves)
    ] + [
        ("time exponent:", f"{exponent:.2f} (< 5.5 required)"),
        ("query exponent:", f"{solve_exponent:.2f} (< 3.6 required)"),
    ])


def test_e2_build_benchmark(benchmark):
    planes = generic_lines(5)
    arrangement = benchmark(
        build_arrangement, hyperplanes=planes, dimension=2
    )
    assert len(arrangement) == expected_faces_2d(5)


def test_e2_incremental_matches_and_times(report):
    """Ablation: batch DFS vs incremental insertion (Theorem 3.1's
    classical algorithm) — identical combinatorics, comparable cost."""
    from repro.arrangement.incremental import build_arrangement_incremental

    rows = []
    for n in (3, 5, 7):
        planes = generic_lines(n)
        start = time.perf_counter()
        batch = build_arrangement(hyperplanes=planes, dimension=2)
        batch_time = time.perf_counter() - start
        start = time.perf_counter()
        incremental = build_arrangement_incremental(
            hyperplanes=planes, dimension=2
        )
        incremental_time = time.perf_counter() - start
        assert sorted(f.signs for f in batch.faces) == sorted(
            f.signs for f in incremental.faces
        )
        rows.append(
            (f"n={n}:",
             f"batch {batch_time * 1000:.0f} ms,",
             f"incremental {incremental_time * 1000:.0f} ms,",
             f"{len(batch)} faces")
        )
    report("E2: batch vs incremental construction", rows)


def test_e2_incremental_benchmark(benchmark):
    from repro.arrangement.incremental import build_arrangement_incremental

    planes = generic_lines(5)
    arrangement = benchmark(
        build_arrangement_incremental, hyperplanes=planes, dimension=2
    )
    assert len(arrangement) == expected_faces_2d(5)


def test_e2_before_after_fast_path(report):
    """Before/after mode: the witness-reuse fast path against the naive
    DFS — identical face lists, recorded speedup.  Set
    ``REPRO_BENCH_RECORD=1`` to write ``BENCH_E2.json`` (the committed
    record is produced by ``repro bench e2`` at larger sizes)."""
    import os

    from repro.bench import run_bench_e2, write_record

    record = run_bench_e2(sizes=(3, 4, 5))
    assert record["all_match"], record
    if os.environ.get("REPRO_BENCH_RECORD"):
        write_record(record, "BENCH_E2.json")
    report("E2: naive DFS vs witness-reuse fast path", [
        (f"n={row['n']}:",
         f"baseline {row['baseline_s'] * 1000:.0f} ms,",
         f"fast {row['fast_s'] * 1000:.0f} ms,",
         f"{row['lp_skipped']} LP solves skipped")
        for row in record["results"]
    ])


def test_e2_parallel_matches_sequential(report):
    """Process-parallel construction yields the exact same face list."""
    from repro.arrangement.parallel import resolve_jobs

    planes = generic_lines(5)
    sequential = build_arrangement(hyperplanes=planes, dimension=2)
    parallel = build_arrangement(
        hyperplanes=planes, dimension=2, parallel=2
    )
    assert [f.signs for f in parallel.faces] == [
        f.signs for f in sequential.faces
    ]
    assert resolve_jobs(None) >= 1
    report("E2: parallel construction is deterministic", [
        ("faces (sequential == 2 workers):", len(parallel)),
    ])
