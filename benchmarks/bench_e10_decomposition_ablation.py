"""E10 — ablation: arrangement vs NC¹ decomposition (Section 7).

The paper highlights the trade-off: the arrangement partitions ℝ^d and
every face is in-or-out of S, but is only known to be PTIME; the NC¹
decomposition is cheaper to compute in parallel but its regions may
overlap, may straddle S, and do not cover ℝ^d.  This experiment makes
each claim observable and compares region counts and build times.
"""

import time
from fractions import Fraction

from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.regions.arrangement_regions import ArrangementDecomposition
from repro.regions.nc1 import NC1Decomposition
from repro.workloads.generators import chain_of_boxes

F = Fraction


def test_e10_counts_and_times(report):
    rows = []
    for count in (1, 2, 3):
        relation = chain_of_boxes(count).spatial
        start = time.perf_counter()
        arrangement = ArrangementDecomposition(relation)
        arr_time = time.perf_counter() - start
        start = time.perf_counter()
        nc1 = NC1Decomposition(relation)
        nc1_time = time.perf_counter() - start
        rows.append(
            (f"{count} boxes:",
             f"arrangement {len(arrangement)} regions "
             f"({arr_time * 1000:.0f} ms),",
             f"nc1 {len(nc1)} regions ({nc1_time * 1000:.0f} ms)")
        )
    report("E10: decomposition sizes and build times", rows)


def test_e10_arrangement_partitions_nc1_does_not(report):
    relation = chain_of_boxes(2).spatial
    arrangement = ArrangementDecomposition(relation)
    nc1 = NC1Decomposition(relation)

    # A point far from S: the arrangement still covers it, NC1 does not.
    far = (F(50), F(50))
    assert arrangement.covers(far)
    assert not nc1.covers(far)

    # Arrangement regions never overlap; NC1 regions of the two touching
    # boxes share the touching corner structure.
    probe = (F(1, 2), F(1, 2))
    assert len(arrangement.regions_containing(probe)) == 1

    report("E10: cover / partition properties", [
        ("arrangement covers far point:", arrangement.covers(far)),
        ("nc1 covers far point:", nc1.covers(far)),
        ("arrangement unique cover at probe:", 1),
    ])


def test_e10_nc1_regions_may_straddle_s(report):
    """Section 7: NC¹ regions are not guaranteed in-or-out of S."""
    # S = open triangle ∪ a piece of its bottom edge.  The NC¹ region for
    # the triangle's bottom outer edge contains points inside S (on the
    # covered piece) and outside S (the uncovered rest of the edge).
    relation = ConstraintRelation.make(
        ("x", "y"),
        parse_formula(
            "(x > 0 & y > 0 & x + y < 2) | "
            "(y = 0 & 1/2 <= x & x <= 1)"
        ),
    )
    nc1 = NC1Decomposition(relation)
    straddling = []
    for region in nc1:
        sample_in = relation.contains(region.sample_point())
        subset = nc1.region_subset_of_relation(region.index)
        if not subset:
            # Does the region still meet S somewhere?
            region_rel = region.as_relation(relation.variables)
            if not region_rel.intersect(relation).is_empty():
                straddling.append(region)
    assert straddling, "expected at least one straddling NC1 region"

    # Arrangement faces never straddle.
    arrangement = ArrangementDecomposition(relation)
    for region in arrangement:
        region_rel = region.as_relation(relation.variables)
        if arrangement.region_subset_of_relation(region.index):
            assert region_rel.difference(relation).is_empty()
        else:
            assert region_rel.intersect(relation).is_empty()

    report("E10: in-or-out property", [
        ("nc1 straddling regions:", len(straddling)),
        ("arrangement straddling regions:", 0),
    ])


def test_e10_arrangement_benchmark(benchmark):
    relation = chain_of_boxes(2).spatial
    decomposition = benchmark(ArrangementDecomposition, relation)
    assert len(decomposition) > 0


def test_e10_nc1_benchmark(benchmark):
    relation = chain_of_boxes(2).spatial
    decomposition = benchmark(NC1Decomposition, relation)
    assert len(decomposition) > 0
