"""E11 — the fixed-point flavours: LFP vs IFP vs PFP (Theorem 6.4).

On positive bodies all three operators coincide; on non-monotone bodies
LFP is rejected syntactically, IFP converges inflationarily, and PFP
either converges or — on oscillating inductions — denotes the empty set.
Stage counts are recorded for each flavour.
"""

import pytest

from repro.errors import FormulaError
from repro.logic.evaluator import Evaluator
from repro.logic.parser import parse_query
from repro.twosorted.structure import RegionExtension
from repro.workloads.generators import interval_chain

POSITIVE_BODY = (
    "[{kind} M(R, Rp). ((R = Rp & sub(R, S)) | "
    "(exists Z. M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](RX, RY)"
)


def reach_query(kind: str) -> str:
    return "exists RX, RY. RX != RY & " + POSITIVE_BODY.format(kind=kind)


def test_e11_flavours_agree_on_positive_bodies(report):
    rows = []
    for k in (1, 2):
        database = interval_chain(k)
        verdicts = {}
        stages = {}
        for kind in ("lfp", "ifp", "pfp"):
            extension = RegionExtension.build(database)
            evaluator = Evaluator(extension)
            verdicts[kind] = evaluator.truth(parse_query(reach_query(kind)))
            stages[kind] = evaluator.metrics.get("fixpoint_stages")
        assert verdicts["lfp"] == verdicts["ifp"] == verdicts["pfp"]
        rows.append(
            (f"chain k={k}:", f"verdict={verdicts['lfp']},",
             f"stages lfp={stages['lfp']} ifp={stages['ifp']} "
             f"pfp={stages['pfp']}")
        )
    report("E11: LFP = IFP = PFP on positive bodies", rows)


def test_e11_lfp_rejects_negative_bodies():
    with pytest.raises(FormulaError):
        parse_query("exists X. [lfp M(R). !M(R)](X)")


def test_e11_pfp_oscillation_is_empty(report):
    database = interval_chain(1)
    extension = RegionExtension.build(database)
    evaluator = Evaluator(extension)
    oscillating = parse_query("exists X. [pfp M(R). !M(R)](X)")
    assert not evaluator.truth(oscillating)
    inflationary = parse_query("exists X. [ifp M(R). !M(R)](X)")
    # IFP of the same body converges (inflationary union) to all regions.
    assert evaluator.truth(inflationary)
    report("E11: non-monotone induction", [
        ("pfp of M := !M:", "empty (no fixed point; oscillates)"),
        ("ifp of M := M ∪ !M:", "all regions (inflationary)"),
        ("lfp of !M:", "rejected syntactically (not positive)"),
    ])


def test_e11_pfp_complement_reachability():
    """A genuinely non-monotone PFP: regions NOT reachable from the
    region of the point 0 — computed as a converging PFP."""
    database = interval_chain(2, gap=True)
    extension = RegionExtension.build(database)
    evaluator = Evaluator(extension)
    # M(R) := R is unreachable so far: complement of the reachable set
    # computed by a positive induction on the complement... simplest
    # converging non-monotone example: M(R) := !(exists Z. M(Z)) | M(R).
    query = parse_query(
        "exists X. [pfp M(R). (!(exists Z. M(Z))) | M(R)](X)"
    )
    # Stage 1: all regions enter (M empty -> guard true); stage 2: guard
    # false but M(R) keeps them -> fixed point = all regions.
    assert evaluator.truth(query)


def test_e11_ifp_benchmark(benchmark):
    database = interval_chain(2)
    extension = RegionExtension.build(database)
    evaluator = Evaluator(extension)
    formula = parse_query(reach_query("ifp"))
    assert benchmark(evaluator.truth, formula)


def test_e11_pfp_benchmark(benchmark):
    database = interval_chain(2)
    extension = RegionExtension.build(database)
    evaluator = Evaluator(extension)
    formula = parse_query(reach_query("pfp"))
    assert benchmark(evaluator.truth, formula)
