"""E4 — Theorem 6.1 and the Conn example: RegLFP in PTIME.

Runs the paper's connectivity query on growing interval chains,
verifies the verdicts against the union-find ground truth, records LFP
stage counts, and asserts polynomial time scaling.
"""

import time

from repro.logic.evaluator import Evaluator
from repro.queries.connectivity import (
    connectivity_query_lfp,
    is_connected,
)
from repro.twosorted.structure import RegionExtension
from repro.workloads.generators import interval_chain

from conftest import empirical_exponent


def test_e4_connectivity_scaling(report):
    sizes, times, stages = [], [], []
    query = connectivity_query_lfp(1)
    for k in (1, 2, 3, 4):
        database = interval_chain(k)
        extension = RegionExtension.build(database)
        evaluator = Evaluator(extension)
        start = time.perf_counter()
        verdict = evaluator.truth(query)
        elapsed = time.perf_counter() - start
        assert verdict  # touching chains are connected
        sizes.append(database.size())
        times.append(elapsed)
        stages.append(evaluator.metrics.get("fixpoint_stages"))
    exponent = empirical_exponent(sizes, times)
    assert exponent < 6.0, exponent
    report("E4: RegLFP connectivity scaling (Theorem 6.1)", [
        (f"|B|={s}:", f"{t * 1000:.0f} ms,", f"{st} LFP stages")
        for s, t, st in zip(sizes, times, stages)
    ] + [("empirical exponent:", f"{exponent:.2f} (< 6 required)")])


def test_e4_verdicts_match_ground_truth():
    for k in (1, 2, 3):
        for gap in (False, True):
            database = interval_chain(k, gap=gap)
            assert is_connected(database, "lfp") == \
                is_connected(database, "ground")


def test_e4_connected_benchmark(benchmark):
    database = interval_chain(2)
    verdict = benchmark.pedantic(
        is_connected, args=(database, "lfp"), rounds=2, iterations=1
    )
    assert verdict


def test_e4_disconnected_benchmark(benchmark):
    database = interval_chain(2, gap=True)
    verdict = benchmark.pedantic(
        is_connected, args=(database, "lfp"), rounds=2, iterations=1
    )
    assert not verdict
