"""Property-based round-trips for the persistence codec.

:mod:`repro.store.codec` promises *bit-identical* round-trips: for any
relation or arrangement, ``loads(kind, dumps(kind, x))`` is structurally
equal to ``x`` (same fingerprint, same re-encoded bytes).  Hypothesis
generates relations over formulas with large-denominator ``Fraction``
coefficients and random hyperplane arrangements; the arrangement tests
run under both ``REPRO_LP_MODE`` tiers, since disk entries written in
one mode must be trusted in the other.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrangement.builder import build_arrangement
from repro.constraints.atoms import Atom, Op
from repro.constraints.formula import FALSE, And, AtomFormula, Not, Or
from repro.constraints.io import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.constraints.terms import LinearTerm
from repro.geometry import fastlp
from repro.geometry.hyperplane import Hyperplane
from repro.store import codec

F = Fraction

VARS = ("x", "y")

fractions = st.builds(
    F,
    st.integers(min_value=-(10**40), max_value=10**40),
    st.integers(min_value=1, max_value=10**40),
)

small_fractions = st.builds(
    F,
    st.integers(min_value=-6, max_value=6),
    st.integers(min_value=1, max_value=4),
)


def _atom(coeffs, constant, op) -> AtomFormula:
    return AtomFormula(
        Atom(LinearTerm.make(dict(zip(VARS, coeffs)), constant), op)
    )


atoms = st.builds(
    _atom,
    st.tuples(fractions, fractions),
    fractions,
    st.sampled_from(list(Op)),
)

formulas = st.recursive(
    atoms,
    lambda children: st.one_of(
        st.builds(lambda a, b: And((a, b)), children, children),
        st.builds(lambda a, b: Or((a, b)), children, children),
        st.builds(Not, children),
    ),
    max_leaves=8,
)

relations = st.builds(
    lambda formula: ConstraintRelation.make(VARS, formula), formulas
)


def _nonzero_plane(coeffs, offset) -> Hyperplane | None:
    if all(c == 0 for c in coeffs):
        return None
    return Hyperplane.make(list(coeffs), offset)


planes = st.builds(
    _nonzero_plane,
    st.tuples(small_fractions, small_fractions),
    small_fractions,
).filter(lambda plane: plane is not None)


@settings(max_examples=60, deadline=None)
@given(relations)
def test_relation_roundtrip_is_bit_identical(relation):
    data = codec.dumps("relation", relation)
    back = codec.loads("relation", data)
    assert isinstance(back, ConstraintRelation)
    assert back.variables == relation.variables
    assert back.formula == relation.formula
    assert back.fingerprint() == relation.fingerprint()
    assert codec.dumps("relation", back) == data


@settings(max_examples=60, deadline=None)
@given(relations)
def test_relation_encoding_is_deterministic(relation):
    # Same object, same bytes — and a structurally equal twin built from
    # the same parts serialises identically too.
    twin = ConstraintRelation.make(relation.variables, relation.formula)
    assert codec.dumps("relation", relation) == codec.dumps(
        "relation", twin
    )


@settings(max_examples=25, deadline=None)
@given(st.lists(planes, min_size=1, max_size=3, unique=True))
@pytest.mark.parametrize("mode", fastlp.LP_MODES)
def test_arrangement_roundtrip(mode, plane_list):
    with fastlp.lp_mode(mode):
        arrangement = build_arrangement(
            hyperplanes=plane_list, dimension=2
        )
    data = codec.dumps("arrangement", arrangement)
    back = codec.loads("arrangement", data)
    assert back.dimension == arrangement.dimension
    assert back.hyperplanes == arrangement.hyperplanes
    assert back.faces == arrangement.faces
    assert codec.dumps("arrangement", back) == data


@pytest.mark.parametrize("mode", fastlp.LP_MODES)
def test_arrangement_with_relation_roundtrip(mode):
    relation = ConstraintRelation.make(
        VARS, parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )
    with fastlp.lp_mode(mode):
        arrangement = build_arrangement(relation)
    back = codec.loads(
        "arrangement", codec.dumps("arrangement", arrangement)
    )
    assert back.relation is not None
    assert back.relation.fingerprint() == relation.fingerprint()
    assert back.faces == arrangement.faces
    assert [f.in_relation for f in back.faces] == [
        f.in_relation for f in arrangement.faces
    ]


def test_huge_denominators_survive():
    huge = F(10**60 + 7, 10**60 + 9)
    relation = ConstraintRelation.make(
        ("x",),
        AtomFormula(
            Atom(LinearTerm.make({"x": huge}, -huge / 3), Op.LE)
        ),
    )
    back = codec.loads("relation", codec.dumps("relation", relation))
    (atom,) = [a for a in back.formula.atoms()]
    assert dict(atom.term.coefficients)["x"] == huge
    assert atom.term.constant == -huge / 3


def test_quantifiers_and_constants_roundtrip():
    # ConstraintRelation.make eliminates quantifiers, so stored formulas
    # are always quantifier-free — but the codec still covers the full
    # AST so a future caller can persist un-normalised formulas.  Check
    # the node encoders directly.
    quantified = parse_formula("exists x. (x <= y & !(forall z. z < x))")
    encoded = codec._enc_formula(quantified)
    assert codec._dec_formula(encoded) == quantified
    empty = ConstraintRelation.make(("x",), FALSE)
    assert codec.loads(
        "relation", codec.dumps("relation", empty)
    ).formula == FALSE


def test_envelope_rejects_foreign_kind_and_junk():
    relation = ConstraintRelation.universe(("x",))
    data = codec.dumps("relation", relation)
    with pytest.raises(codec.CodecError):
        codec.loads("arrangement", data)
    with pytest.raises(codec.CodecError):
        codec.loads("relation", b"not json at all")
    with pytest.raises(codec.CodecError):
        codec.loads("relation", b"[1,2,3]")
    with pytest.raises(codec.CodecError):
        codec.encode("no-such-kind", relation)


_GOOD_ATOM = {"t": {"c": [["x", [1, 1]]], "k": [0, 1]}, "op": "<="}
_GOOD_FACE = {"i": 0, "s": [0], "d": 1, "p": [[0, 1], [0, 1]], "in": False}
_GOOD_PLANE = {"n": [[1, 1], [0, 1]], "o": [0, 1]}

_BAD_PAYLOADS = [
    # rationals: wrong shape, zero/negative denominator, bool smuggling
    ("relation", {"vars": ["x"], "formula": {"f": "atom", "a": {
        "t": {"c": [["x", "1/2"]], "k": [0, 1]}, "op": "<="}}}),
    ("relation", {"vars": ["x"], "formula": {"f": "atom", "a": {
        "t": {"c": [["x", [1, 0]]], "k": [0, 1]}, "op": "<="}}}),
    ("relation", {"vars": ["x"], "formula": {"f": "atom", "a": {
        "t": {"c": [["x", [True, 1]]], "k": [0, 1]}, "op": "<="}}}),
    # terms and atoms
    ("relation", {"vars": ["x"], "formula": {"f": "atom", "a": {
        "t": {"c": "oops", "k": [0, 1]}, "op": "<="}}}),
    ("relation", {"vars": ["x"], "formula": {"f": "atom", "a": {
        "t": {"c": [["x"]], "k": [0, 1]}, "op": "<="}}}),
    ("relation", {"vars": ["x"], "formula": {"f": "atom", "a": {
        "t": {"c": [[7, [1, 1]]], "k": [0, 1]}, "op": "<="}}}),
    ("relation", {"vars": ["x"], "formula": {"f": "atom", "a": {
        "t": {"c": [["x", [1, 1]]], "k": [0, 1]}, "op": "!="}}}),
    ("relation", {"vars": ["x"], "formula": {"f": "atom", "a": "nope"}}),
    # formulas: unknown tags, malformed connectives
    ("relation", {"vars": ["x"], "formula": "nope"}),
    ("relation", {"vars": ["x"], "formula": {"f": "xor"}}),
    ("relation", {"vars": ["x"], "formula": {"f": "and", "ops": 3}}),
    # relations: schema violations
    ("relation", "nope"),
    ("relation", {"vars": "xy", "formula": {"f": "true"}}),
    ("relation", {"vars": ["x", "x"], "formula": {"f": "true"}}),
    ("relation", {"vars": [], "formula": {"f": "atom", "a": _GOOD_ATOM}}),
    # hyperplanes and faces
    ("arrangement", {"dim": 2, "planes": ["nope"], "faces": [],
                     "relation": None}),
    ("arrangement", {"dim": 2, "faces": [],
                     "planes": [{"n": [[0, 1], [0, 1]], "o": [0, 1]}],
                     "relation": None}),
    ("arrangement", {"dim": 1, "planes": [_GOOD_PLANE], "faces": ["no"],
                     "relation": None}),
    ("arrangement", {"dim": 1, "planes": [_GOOD_PLANE],
                     "faces": [dict(_GOOD_FACE, s=[7])],
                     "relation": None}),
    ("arrangement", {"dim": 1, "planes": [_GOOD_PLANE],
                     "faces": [dict(_GOOD_FACE, i="zero")],
                     "relation": None}),
    ("arrangement", {"dim": 1, "planes": [_GOOD_PLANE],
                     "faces": [dict(_GOOD_FACE, **{"in": 1})],
                     "relation": None}),
    # a face whose sign vector / sample disagree with the plane list
    ("arrangement", {"dim": 1, "planes": [_GOOD_PLANE],
                     "faces": [dict(_GOOD_FACE, s=[0, 0])],
                     "relation": None}),
    ("arrangement", {"dim": -1, "planes": [], "faces": [],
                     "relation": None}),
    ("arrangement", "nope"),
    # non-list vector / face list, and a raw TypeError deep in Fraction
    ("arrangement", {"dim": 1, "planes": [_GOOD_PLANE],
                     "faces": [dict(_GOOD_FACE, p="nope")],
                     "relation": None}),
    ("arrangement", {"dim": 1, "planes": [_GOOD_PLANE], "faces": "nope",
                     "relation": None}),
    ("relation", {"vars": ["x"], "formula": {"f": "atom", "a": {
        "t": {"c": [["x", [1, [2]]]], "k": [0, 1]}, "op": "<="}}}),
]


@pytest.mark.parametrize("kind, payload", _BAD_PAYLOADS)
def test_decoders_reject_malformed_payloads(kind, payload):
    """Valid-checksum envelopes with broken payloads still raise.

    The checksum guards against *accidental* damage; the structural
    validation guards against everything else (foreign writers, partial
    schema migrations), so both layers are exercised separately.
    """
    with pytest.raises(codec.CodecError):
        codec.decode(kind, payload)
    envelope = {
        "schema": codec.SCHEMA_VERSION,
        "kind": kind,
        "checksum": codec.checksum(codec.SCHEMA_VERSION, kind, payload),
        "payload": payload,
    }
    with pytest.raises(codec.CodecError):
        codec.loads(kind, codec.canonical_json(envelope))


def test_encode_rejects_wrong_artifact_type():
    with pytest.raises(codec.CodecError):
        codec.encode("relation", "not a relation")
    with pytest.raises(codec.CodecError):
        codec.encode("arrangement", triangle_relation())
    with pytest.raises(codec.CodecError):
        codec.decode("no-such-kind", {})


def triangle_relation() -> ConstraintRelation:
    return ConstraintRelation.make(
        VARS, parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


def test_keys_are_content_addressed():
    r1 = ConstraintRelation.make(VARS, parse_formula("x + y <= 1"))
    r2 = ConstraintRelation.make(VARS, parse_formula("x + y <= 2"))
    a1 = build_arrangement(r1)
    a2 = build_arrangement(r2)
    k1 = codec.arrangement_key(a1.hyperplanes, 2, r1)
    k1_again = codec.arrangement_key(a1.hyperplanes, 2, r1)
    k2 = codec.arrangement_key(a2.hyperplanes, 2, r2)
    assert k1 == k1_again
    assert k1 != k2
    assert codec.query_result_key("fp", "arrangement", "S", "q1") != \
        codec.query_result_key("fp", "arrangement", "S", "q2")
