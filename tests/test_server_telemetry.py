"""Server-side telemetry: /metrics, SLO stats and the slow-query log.

Drives :meth:`ConstraintService.handle` directly (like
``test_server_service.py``) with a private metrics + telemetry registry
per service, so assertions never race other tests' observations.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import ConstraintDatabase, parse_formula
from repro.config import EngineConfig
from repro.explain import plan_cost_totals
from repro.obs import reset_all
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import load_slow_log
from repro.obs.telemetry import TelemetryRegistry
from repro.server import ConstraintService
from repro.server.http import Request, encode


@pytest.fixture(autouse=True)
def _clean_slate():
    reset_all()
    yield
    reset_all()


def _db(text: str = "(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"):
    return ConstraintDatabase.from_formula(parse_formula(text), arity=1)


def _request(method: str, path: str, body: bytes = b"",
             headers: dict | None = None) -> Request:
    return Request(method=method, path=path, query={},
                   headers=headers or {}, body=body)


def _call(service: ConstraintService, request: Request):
    return asyncio.run(service.handle(request))


def _service(**kwargs) -> ConstraintService:
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("telemetry", TelemetryRegistry())
    return ConstraintService({"demo": _db()}, **kwargs)


class TestMetricsEndpoint:
    def test_scrape_is_prometheus_text(self):
        service = _service()
        _call(service, _request("POST", "/v1/query",
                                b'{"query": "S(x0)"}'))
        response = _call(service, _request("GET", "/metrics"))
        assert response.status == 200
        assert response.text is not None
        assert response.headers["content-type"].startswith("text/plain")
        assert "# TYPE repro_server_requests_total counter" in response.text
        assert "# TYPE repro_server_request_seconds histogram" \
            in response.text

    def test_wire_body_is_the_raw_text(self):
        service = _service()
        response = _call(service, _request("GET", "/metrics"))
        wire = encode(response, keep_alive=False)
        assert b"content-type: text/plain" in wire
        body = wire.split(b"\r\n\r\n", 1)[1]
        assert body.decode("utf-8") == response.text

    def test_request_series_labeled_by_tenant_and_endpoint(self):
        service = _service()
        _call(service, _request(
            "POST", "/v1/query", b'{"query": "S(x0)"}',
            headers={"x-repro-tenant": "acme"},
        ))
        _call(service, _request(
            "POST", "/v1/query", b'{"query": "S(x0)"}',
            headers={"x-repro-tenant": "globex"},
        ))
        response = _call(service, _request("GET", "/metrics"))
        text = response.text
        assert 'tenant="acme"' in text
        assert 'tenant="globex"' in text
        assert 'endpoint="/v1/query"' in text

    def test_unmatched_path_folds_into_unknown_endpoint(self):
        service = _service()
        _call(service, _request("GET", "/totally/bogus/path"))
        text = _call(service, _request("GET", "/metrics")).text
        assert 'endpoint="unknown"' in text
        assert "bogus" not in text, "raw paths must never mint series"

    def test_labels_off_collapses_to_unlabeled_series(self):
        service = _service(config=EngineConfig(metrics_labels="off"))
        _call(service, _request(
            "POST", "/v1/query", b'{"query": "S(x0)"}',
            headers={"x-repro-tenant": "acme"},
        ))
        text = _call(service, _request("GET", "/metrics")).text
        assert 'tenant="acme"' not in text
        # The scrape renders before observing itself: one unlabeled
        # observation from the query request.
        assert "repro_server_request_seconds_count 1" in text

    def test_method_is_enforced(self):
        service = _service()
        response = _call(service, _request("POST", "/metrics"))
        assert response.status == 405


class TestSloStats:
    def test_stats_carry_slo_block(self):
        service = _service()
        _call(service, _request("POST", "/v1/query",
                                b'{"query": "S(x0)"}'))
        response = _call(service, _request("GET", "/v1/stats"))
        slo = response.payload["slo"]
        assert slo["objective"]["latency_ms"] == service.slo.latency_ms
        tenants = slo["tenants"]
        assert "public" in tenants
        assert tenants["public"]["windows"]["300s"]["total"] >= 1

    def test_breaches_counted_for_slow_requests(self):
        service = _service(
            config=EngineConfig(slo_latency_ms=0.0001)
        )
        _call(service, _request("POST", "/v1/query",
                                b'{"query": "S(x0)"}'))
        response = _call(service, _request("GET", "/v1/stats"))
        windows = response.payload["slo"]["tenants"]["public"]["windows"]
        assert windows["300s"]["breaches"] >= 1
        assert windows["300s"]["burn_rate"] > 1.0

    def test_stats_slow_log_block_reflects_config(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        service = _service(config=EngineConfig(slow_log=str(path)))
        response = _call(service, _request("GET", "/v1/stats"))
        block = response.payload["slow_log"]
        assert block["path"] == str(path)
        assert block["threshold_ms"] == service.slo.latency_ms

    def test_stats_slow_log_disabled_by_default(self):
        service = _service()
        response = _call(service, _request("GET", "/v1/stats"))
        assert response.payload["slow_log"]["path"] is None


class TestSlowQueryCapture:
    def _slow_service(self, tmp_path, **kwargs) -> ConstraintService:
        # A microsecond objective makes every real query "slow".
        return _service(
            config=EngineConfig(
                slow_log=str(tmp_path / "slow.jsonl"),
                slo_latency_ms=0.0001,
            ),
            **kwargs,
        )

    def test_slow_query_captures_analyzed_plan(self, tmp_path):
        service = self._slow_service(tmp_path)
        response = _call(service, _request(
            "POST", "/v1/query", b'{"query": "S(x0)"}',
            headers={"x-repro-tenant": "acme"},
        ))
        assert response.status == 200
        records = load_slow_log(tmp_path / "slow.jsonl")
        assert len(records) == 1
        record = records[0]
        assert record["tenant"] == "acme"
        assert record["query"] == "S(x0)"
        assert record["wall_ms"] > record["threshold_ms"]
        assert record["request_id"] == response.payload["request_id"]
        explain = record["explain"]
        assert explain["analyzed"] is True
        assert explain["totals"]["wall_ms"] > 0

    def test_captured_plan_costs_sum_to_run_totals(self, tmp_path):
        """The EXPLAIN ANALYZE attribution contract holds in the log."""
        service = self._slow_service(tmp_path)
        _call(service, _request("POST", "/v1/query",
                                b'{"query": "exists x. S(x) & x < 1"}'))
        record = load_slow_log(tmp_path / "slow.jsonl")[0]
        explain = record["explain"]
        sums = plan_cost_totals(explain["plan"])
        totals = explain["totals"]
        counters = {k: v for k, v in totals["counters"].items() if v}
        assert sums["self_counters"] == counters, (
            "per-node self counters must sum exactly to the run totals"
        )
        assert sums["self_wall_ms"] == pytest.approx(
            totals["wall_ms"], abs=0.5
        )

    def test_fast_requests_are_not_captured(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        service = _service(
            config=EngineConfig(slow_log=str(path),
                                slo_latency_ms=60000.0)
        )
        _call(service, _request("POST", "/v1/query",
                                b'{"query": "S(x0)"}'))
        assert load_slow_log(path) == []

    def test_capture_counter_and_journal_record(self, tmp_path):
        metrics = MetricsRegistry()
        service = self._slow_service(tmp_path, metrics=metrics)
        _call(service, _request("POST", "/v1/query",
                                b'{"query": "S(x0)"}'))
        assert metrics.counter("server.slow_queries").value == 1

    def test_records_are_valid_json_lines(self, tmp_path):
        service = self._slow_service(tmp_path)
        _call(service, _request("POST", "/v1/query",
                                b'{"query": "S(x0)"}'))
        raw = (tmp_path / "slow.jsonl").read_text().splitlines()
        assert all(json.loads(line) for line in raw)


class TestInflightGauge:
    def test_gauge_returns_to_zero(self):
        service = _service()
        _call(service, _request("POST", "/v1/query",
                                b'{"query": "S(x0)"}'))
        gauge = service.telemetry.gauge("server.inflight_requests")
        assert gauge.value == 0.0

    def test_admission_gauges_exist_and_settle(self):
        service = _service()
        _call(service, _request("POST", "/v1/query",
                                b'{"query": "S(x0)"}'))
        assert service.telemetry.gauge(
            "server.admission.active"
        ).value == 0.0
        assert service.telemetry.gauge(
            "server.admission.waiting"
        ).value == 0.0
