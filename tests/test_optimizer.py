"""The cost-based optimizer: rewrites preserve answers, knobs resolve.

The optimizer's contract has three parts.  *Soundness*: every plan
rewrite (NNF + miniscoping, operand ordering, quantifier-chain
rotation, datalog body reordering) denotes the same answer as the
ablated plan — ``optimizer="off"`` is the oracle.  *Transparency*:
decisions are recorded and surfaced as ``chosen``/``because`` lines in
EXPLAIN.  *Adaptivity*: knobs resolve explicit > environment >
statistics > default, and a warm engine consumes the statistics a cold
engine persisted.
"""

from fractions import Fraction

import pytest

from repro.config import EngineConfig
from repro.engine import QueryEngine
from repro.logic import ast
from repro.logic.parser import parse_query
from repro.optimizer import Statistics, make_node_stats, node_fingerprint
from repro.optimizer.cost import CostModel
from repro.optimizer.knobs import (
    GLOBAL_ARRANGEMENT,
    GLOBAL_LP,
    choose_knobs,
    decided,
)
from repro.optimizer.rewrite import (
    order_program,
    order_rule_body,
    rewrite_query,
)
from repro.workloads.generators import interval_chain

F = Fraction

#: Sentences covering every rewrite lever; the optimizer-on engine must
#: agree with the ablated engine on each.
EQUIVALENCE_QUERIES = (
    "exists x. exists y. (S(x) & S(y) & x < 1)",
    "exists x. exists y. exists z. (S(x) & S(y) & S(z) & x < 1)",
    "forall x. (S(x) -> (x >= 0 & x <= 12))",
    "(forall R. forall Rp. (adj(R, Rp) -> "
    "(exists x. exists y. ((x) in R & (y) in Rp & x <= y)))) "
    "& (exists w. (S(w) & w + 2 < 0))",
    "(exists w. (S(w) & w >= 0)) | (exists w. (S(w) & w + 9 < 0))",
    "!(exists x. (S(x) & x + 5 < 0))",
    "forall X. forall Y. ((sub(X, S) & sub(Y, S)) -> "
    "(exists RX. exists RY. (sub(RX, S) & sub(RY, S) & "
    "[lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
    "(exists Z. adj(Z, Rp) & sub(Rp, S) & M(R, Z)))](RX, RY))))",
)


class TestRewriteEquivalence:
    @pytest.mark.parametrize("text", EQUIVALENCE_QUERIES)
    def test_optimized_and_ablated_agree(self, text):
        database = interval_chain(4)
        formula = parse_query(text)
        ablated = QueryEngine(
            database, config=EngineConfig(optimizer="off")
        ).evaluate(formula)
        optimized = QueryEngine(
            database, config=EngineConfig(optimizer="on")
        ).evaluate(formula)
        assert ablated.arity == optimized.arity == 0
        assert ablated.is_empty() == optimized.is_empty()

    def test_relation_valued_query_same_denotation(self):
        # One free element variable: compare the answer *sets*, not the
        # formulas (the rewritten plan may print differently).
        database = interval_chain(4)
        formula = parse_query("S(x) & (exists y. (S(y) & y <= x))")
        off = QueryEngine(
            database, config=EngineConfig(optimizer="off")
        ).evaluate(formula)
        on = QueryEngine(
            database, config=EngineConfig(optimizer="on")
        ).evaluate(formula)
        assert off.variables == on.variables
        assert off.difference(on).is_empty()
        assert on.difference(off).is_empty()

    def test_rewrite_is_deterministic(self):
        formula = parse_query(EQUIVALENCE_QUERIES[3])
        first = rewrite_query(formula)
        second = rewrite_query(formula)
        assert str(first.formula) == str(second.formula)

    def test_rewrite_records_ordering_decisions(self):
        formula = parse_query(
            "(exists x. exists y. ((x) in R & S(x) & S(y))) "
            "& (exists w. (S(w) & w < 0))"
        )
        outcome = rewrite_query(formula)
        kinds = [d.chosen for d in outcome.decisions]
        assert any(k.startswith("operand order") for k in kinds)

    def test_plain_atom_is_left_alone(self):
        formula = parse_query("S(x)")
        outcome = rewrite_query(formula)
        assert str(outcome.formula) == str(formula)
        assert outcome.decisions == []


class TestCostModel:
    def test_atom_cost_ladder(self):
        model = CostModel()
        set_atom = ast.SetAtom("M", ("R", "Rp"))
        adj = ast.Adj("R", "Rp")
        relation = parse_query("S(x)")
        assert model.cost(set_atom) < model.cost(adj)
        assert model.cost(adj) < model.cost(relation)

    def test_quantifiers_multiply_cost(self):
        model = CostModel()
        body = parse_query("S(x)")
        quantified = ast.ExistsElem("x", body)
        assert model.cost(quantified) > model.cost(body)

    def test_measured_cost_overrides_static(self):
        formula = parse_query("S(x)")
        slow = Statistics().merge(
            {node_fingerprint(formula): make_node_stats(calls=1, wall=2)}
        )
        with_stats = CostModel(slow)
        without = CostModel()
        assert with_stats.cost(formula) > without.cost(formula)
        assert with_stats.stats_hits == 1
        assert without.stats_hits == 0


class TestKnobs:
    def test_explicit_config_always_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_MODE", "exact")
        config = EngineConfig(lp_mode="filtered")
        decision = decided(choose_knobs(config), "lp_mode")
        assert decision.chosen == "filtered"
        assert decision.because == "explicit configuration"

    def test_environment_beats_statistics(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_MODE", "exact")
        stats = Statistics().merge(
            {
                GLOBAL_LP: make_node_stats(
                    calls=1,
                    counters={"lp.filter_hits": 100},
                )
            }
        )
        decision = decided(choose_knobs(EngineConfig(), stats), "lp_mode")
        assert decision.chosen == "exact"
        assert "REPRO_LP_MODE" in decision.because

    def test_high_fallback_rate_chooses_exact(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP_MODE", raising=False)
        stats = Statistics().merge(
            {
                GLOBAL_LP: make_node_stats(
                    calls=1,
                    counters={
                        "lp.filter_hits": 1,
                        "lp.filter_fallbacks": 9,
                    },
                )
            }
        )
        decision = decided(choose_knobs(EngineConfig(), stats), "lp_mode")
        assert decision.chosen == "exact"
        assert decision.from_stats

    def test_big_arrangements_choose_parallel_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        stats = Statistics().merge(
            {
                GLOBAL_ARRANGEMENT: make_node_stats(
                    calls=1,
                    counters={"arrangement.faces": 100_000},
                )
            }
        )
        decision = decided(choose_knobs(EngineConfig(), stats), "jobs")
        import os

        expected = min(4, os.cpu_count() or 1)
        if expected > 1:
            assert decision.chosen == str(expected)
            assert decision.from_stats

    def test_small_arrangements_stay_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        stats = Statistics().merge(
            {
                GLOBAL_ARRANGEMENT: make_node_stats(
                    calls=1, counters={"arrangement.faces": 10}
                )
            }
        )
        decision = decided(choose_knobs(EngineConfig(), stats), "jobs")
        assert decision.chosen == "1"


class TestDatalogBodyOrdering:
    def test_greedy_bound_propagation(self):
        from repro.datalog.parser import parse_program

        program = parse_program(
            "Reach(y) :- E(x, y), Reach(x), S(y).\n"
            "Reach(x) :- S(x), x = 0.\n"
        )
        rule = order_program(program).rules[0]
        # Reach(x) binds the head-adjacent x cheapest (1 variable),
        # then E(x, y) shares x, then S(y) shares y.
        assert [atom.predicate for atom in rule.body] == [
            "Reach", "E", "S",
        ]

    def test_ordering_is_idempotent(self):
        from repro.datalog.parser import parse_program

        program = parse_program(
            "Reach(y) :- E(x, y), Reach(x), S(y).\n"
            "Reach(x) :- S(x), x = 0.\n"
        )
        once = order_program(program)
        assert order_program(once) is once

    def test_single_atom_rule_unchanged(self):
        from repro.datalog.parser import parse_program

        program = parse_program("Copy(x) :- S(x).\n")
        assert order_rule_body(program.rules[0]) is program.rules[0]

    @pytest.mark.parametrize("executor", ("interpreted", "compiled"))
    def test_evaluation_matches_unordered_oracle(self, executor):
        from repro.datalog import evaluate_program
        from repro.datalog.parser import parse_program

        program = parse_program(
            "Reach(x) :- S(x), x = 0.\n"
            "Reach(y) :- S(y), y - x <= 1, x - y <= 1, Reach(x).\n"
        )
        database = interval_chain(6)
        oracle = evaluate_program(
            program, database, max_stages=40, executor=executor,
            optimizer="off",
        )
        ordered = evaluate_program(
            program, database, max_stages=40, executor=executor,
            optimizer="on",
        )
        assert ordered.relations == oracle.relations
        for predicate in oracle.relations:
            assert str(ordered[predicate].formula) == str(
                oracle[predicate].formula
            )


class TestFourierMotzkinOrdering:
    def _box_system(self):
        from repro.geometry.fourier_motzkin import (
            LinearConstraint,
            Rel,
        )

        rows = [
            LinearConstraint((F(1), F(0), F(0)), Rel.LE, F(4)),
            LinearConstraint((F(-1), F(0), F(0)), Rel.LE, F(0)),
            LinearConstraint((F(1), F(1), F(0)), Rel.LE, F(6)),
            LinearConstraint((F(0), F(1), F(-1)), Rel.LE, F(2)),
            LinearConstraint((F(0), F(-1), F(1)), Rel.LT, F(3)),
            LinearConstraint((F(0), F(0), F(1)), Rel.EQ, F(1)),
        ]
        return rows

    def test_auto_order_puts_equalities_first(self):
        from repro.geometry.fourier_motzkin import elimination_order

        rows = self._box_system()
        order = elimination_order(rows, [0, 1, 2])
        assert order[0] == 2  # x2 has an equality row: substitution
        assert sorted(order) == [0, 1, 2]

    def test_auto_and_given_project_the_same_set(self):
        from repro.geometry.fourier_motzkin import eliminate_variables

        rows = self._box_system()
        given = eliminate_variables(rows, [0, 1], order="given")
        auto = eliminate_variables(rows, [0, 1], order="auto")
        for z_num in range(-8, 9):
            point = (F(0), F(0), F(z_num, 2))
            assert all(
                row.satisfied_by(point) for row in given
            ) == all(row.satisfied_by(point) for row in auto)

    def test_unknown_order_rejected(self):
        from repro.geometry.fourier_motzkin import eliminate_variables

        with pytest.raises(ValueError):
            eliminate_variables(self._box_system(), [0], order="bogus")


class TestEngineIntegration:
    def test_plan_memo_returns_identical_object(self):
        engine = QueryEngine(
            interval_chain(3), config=EngineConfig(optimizer="on")
        )
        formula = parse_query("exists x. exists y. (S(x) & S(y))")
        first, _ = engine.plan(formula)
        second, _ = engine.plan(formula)
        assert first is second

    def test_optimizer_off_plans_identity(self):
        engine = QueryEngine(
            interval_chain(3), config=EngineConfig(optimizer="off")
        )
        formula = parse_query("exists x. S(x)")
        planned, outcome = engine.plan(formula)
        assert planned is formula
        assert outcome is None

    def test_warm_engine_reports_stats_hits(self, tmp_path):
        database = interval_chain(4)
        formula = parse_query("exists x. exists y. (S(x) & S(y) & x < 1)")
        cold = QueryEngine(
            database,
            config=EngineConfig.resolve(
                cache_dir=str(tmp_path), optimizer="on"
            ),
        )
        cold.evaluate(formula)
        assert cold.stats()["optimizer"]["stats_updates"] >= 1
        warm = QueryEngine(
            database,
            config=EngineConfig.resolve(
                cache_dir=str(tmp_path), optimizer="on"
            ),
        )
        warm.evaluate(formula)
        assert warm.stats()["optimizer"]["stats_hits"] > 0

    def test_stats_block_present_and_gated(self):
        on = QueryEngine(
            interval_chain(3), config=EngineConfig(optimizer="on")
        )
        off = QueryEngine(
            interval_chain(3), config=EngineConfig(optimizer="off")
        )
        assert on.stats()["optimizer"]["enabled"] is True
        assert off.stats()["optimizer"]["enabled"] is False

    def test_env_gate_disables_rewrites(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPTIMIZER", "off")
        engine = QueryEngine(interval_chain(3), config=EngineConfig())
        formula = parse_query("exists x. S(x)")
        planned, outcome = engine.plan(formula)
        assert planned is formula and outcome is None


class TestExplainAnnotations:
    def test_explain_shows_chosen_and_because(self):
        engine = QueryEngine(
            interval_chain(4), config=EngineConfig(optimizer="on")
        )
        formula = parse_query(
            "(forall R. forall Rp. (adj(R, Rp) -> "
            "(exists x. exists y. ((x) in R & (y) in Rp & x <= y)))) "
            "& (exists w. (S(w) & w + 2 < 0))"
        )
        text = engine.explain(formula).format()
        assert "chosen:" in text
        assert "because:" in text
        assert "Optimizer: adaptive knobs" in text
        assert "knob lp_mode" in text

    def test_explain_json_carries_decisions(self):
        engine = QueryEngine(
            interval_chain(3), config=EngineConfig(optimizer="on")
        )
        formula = parse_query("exists x. exists y. (S(x) & S(y) & x < 1)")
        payload = engine.explain(formula).to_dict()

        def collect(node):
            yield node
            for child in node.get("children", ()):
                yield from collect(child)

        nodes = list(collect(payload["plan"]))
        assert any(
            node.get("detail", {}).get("chosen") for node in nodes
        )
        assert payload["plan"]["detail"].get("optimizer") == "on"

    def test_explain_off_has_no_knob_node(self):
        engine = QueryEngine(
            interval_chain(3), config=EngineConfig(optimizer="off")
        )
        formula = parse_query("exists x. S(x)")
        text = engine.explain(formula).format()
        assert "Optimizer: adaptive knobs" not in text
        assert "optimizer=off" in text
