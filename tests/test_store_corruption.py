"""Fault injection: corrupted store entries never change an answer.

The contract of :class:`repro.store.disk.DiskStore` is that a damaged
entry — truncated, bit-flipped, or written under a foreign schema
version — is *quarantined* (moved into ``<root>/quarantine/``), counted
in ``store.corrupt_entries``, and reported as a miss, after which the
engine rebuilds and produces results identical to a cold run.
"""

import json

import pytest

from repro.arrangement.builder import build_arrangement
from repro.constraints.io import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.engine import EngineCache, QueryEngine
from repro.obs.metrics import MetricsRegistry
from repro.store import codec
from repro.store.disk import DiskStore
from repro.workloads.generators import interval_chain


@pytest.fixture
def store(tmp_path):
    # A private metrics registry isolates the store.* counters from the
    # process-wide ones other tests increment.
    return DiskStore(tmp_path / "cache", metrics=MetricsRegistry())


def triangle() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


def only_entry(store: DiskStore):
    entries = store._entry_files()
    assert len(entries) == 1
    return entries[0]


def truncate(path):
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def bit_flip(path):
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x40
    path.write_bytes(bytes(data))


def version_bump(path):
    # A well-formed envelope from a future codec: the checksum matches
    # its own (bumped) version, so only the version check can reject it.
    envelope = json.loads(path.read_text())
    bumped = codec.SCHEMA_VERSION + 1
    envelope["schema"] = bumped
    envelope["checksum"] = codec.checksum(
        bumped, envelope["kind"], envelope["payload"]
    )
    path.write_bytes(codec.canonical_json(envelope))


CORRUPTIONS = {
    "truncate": truncate,
    "bit-flip": bit_flip,
    "version-bump": version_bump,
}


@pytest.mark.parametrize("damage", sorted(CORRUPTIONS))
def test_corrupt_arrangement_is_quarantined_and_rebuilt(store, damage):
    relation = triangle()
    cold = build_arrangement(relation, store=store)
    entry = only_entry(store)
    CORRUPTIONS[damage](entry)

    rebuilt = build_arrangement(relation, store=store)
    assert rebuilt.faces == cold.faces
    assert rebuilt.hyperplanes == cold.hyperplanes

    stats = store.stats()
    assert stats["corrupt_entries"] == 1
    assert stats["hits"] == 0
    # The bad bytes were moved aside (kept for inspection) and the
    # rebuild re-persisted a clean entry: a third build is a pure hit.
    assert list(store.quarantine_root.iterdir())
    assert codec.loads("arrangement", entry.read_bytes()) is not None
    warm = build_arrangement(relation, store=store)
    assert warm.faces == cold.faces
    assert store.stats()["hits"] == 1


@pytest.mark.parametrize("damage", sorted(CORRUPTIONS))
def test_corrupt_result_never_changes_query_answers(tmp_path, damage):
    database = interval_chain(2)
    query = "S(x) & x < 1"

    def run(store):
        engine = QueryEngine(
            database,
            cache=EngineCache(metrics=MetricsRegistry()),
            cache_dir=store,
        )
        return engine.evaluate(query), engine.truth("exists x. S(x)")

    store = DiskStore(tmp_path / "cache", metrics=MetricsRegistry())
    cold_answer, cold_truth = run(store)
    cold_bytes = codec.dumps("relation", cold_answer)

    # Damage every stored entry (answer relations and the arrangement).
    for entry in store._entry_files():
        CORRUPTIONS[damage](entry)

    warm_answer, warm_truth = run(store)
    assert warm_truth == cold_truth
    assert codec.dumps("relation", warm_answer) == cold_bytes
    stats = store.stats()
    assert stats["corrupt_entries"] >= 1
    assert stats["hits"] == 0
    assert list(store.quarantine_root.iterdir())

    # After the rebuild re-persisted clean entries, a fresh engine warm-
    # starts from them with byte-identical output.
    final_answer, final_truth = run(store)
    assert final_truth == cold_truth
    assert codec.dumps("relation", final_answer) == cold_bytes
    assert store.stats()["hits"] > 0


def test_quarantine_names_do_not_collide(store):
    relation = triangle()
    for __ in range(3):
        build_arrangement(relation, store=store)
        entry = only_entry(store)
        bit_flip(entry)
        assert build_arrangement(relation, store=store) is not None
        # The freshly re-saved entry is damaged again on the next loop;
        # each round must land a new file in quarantine.
        bit_flip(only_entry(store))
        assert store.load("arrangement", entry.stem) is None
    assert len(list(store.quarantine_root.iterdir())) >= 3


def test_unreadable_key_is_rejected_before_disk(store):
    with pytest.raises(ValueError):
        store.load("arrangement", "../../etc/passwd")
    with pytest.raises(ValueError):
        store.entry_path("no-such-kind", "ab" * 32)


def test_unreadable_entry_is_a_miss_not_an_error(store):
    # A directory squatting on an entry path makes read_bytes() raise
    # OSError; the store must degrade to a miss, not propagate.
    key = "ab" * 32
    path = store.entry_path("arrangement", key)
    path.mkdir(parents=True)
    assert store.load("arrangement", key) is None
    assert store.stats()["misses"] == 1


def test_non_positive_size_budget_is_rejected(tmp_path):
    with pytest.raises(ValueError):
        DiskStore(tmp_path / "cache", size_budget=0)
    with pytest.raises(ValueError):
        DiskStore(tmp_path / "cache", size_budget=-1)
