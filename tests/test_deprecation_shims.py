"""The deprecated shims warn exactly once, and the new paths don't.

Satellite criteria: every legacy entry point (``evaluate_query``,
``query_truth``, ``lp_statistics`` / ``reset_lp_statistics``,
``Evaluator.stats``) emits one ``DeprecationWarning`` per process while
still returning the right answer; a second call is silent (the shims sit
on hot paths); and the replacement ``QueryEngine`` / ``metrics`` APIs
are warning-clean, which is what lets ``pyproject.toml`` escalate the
shim messages to errors for the rest of the suite.
"""

import warnings

import pytest

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.deprecation import reset_deprecation_warnings, warn_once
from repro.engine import QueryEngine
from repro.logic.evaluator import Evaluator, evaluate_query, query_truth
from repro.logic.parser import parse_query
from repro.twosorted.structure import RegionExtension


@pytest.fixture(autouse=True)
def _fresh_deprecation_state():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def interval_db() -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(
        parse_formula("0 < x0 & x0 < 1"), 1
    )


class TestWarnOnce:
    def test_first_call_warns_second_is_silent(self):
        with pytest.warns(DeprecationWarning, match="gone soon"):
            warn_once("probe", "probe() is gone soon")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            warn_once("probe", "probe() is gone soon")

    def test_keys_are_independent(self):
        with pytest.warns(DeprecationWarning):
            warn_once("probe-a", "a is deprecated")
        with pytest.warns(DeprecationWarning):
            warn_once("probe-b", "b is deprecated")

    def test_exactly_one_warning_under_concurrent_threads(self):
        # EnginePool serves requests from worker threads; a racy
        # check-then-add would let several threads emit the "first"
        # warning.  A barrier maximises the collision window.
        import threading

        n_threads = 16
        barrier = threading.Barrier(n_threads)
        captured: list[warnings.WarningMessage] = []
        errors: list[BaseException] = []

        def hammer() -> None:
            try:
                barrier.wait()
                for __ in range(50):
                    warn_once("probe-threaded", "threaded() is deprecated")
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            threads = [
                threading.Thread(target=hammer) for __ in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        emitted = [
            w for w in captured if "threaded() is deprecated" in str(w.message)
        ]
        assert len(emitted) == 1


class TestQueryShims:
    def test_evaluate_query_warns_and_answers(self):
        database = interval_db()
        query = parse_query("S(x) & x < 1")
        with pytest.warns(DeprecationWarning, match="evaluate_query"):
            answer = evaluate_query(query, database)
        assert answer.equivalent(QueryEngine(database).evaluate(query))

    def test_query_truth_warns_and_answers(self):
        database = interval_db()
        query = parse_query("exists x. S(x)")
        with pytest.warns(DeprecationWarning, match="query_truth"):
            assert query_truth(query, database) is True

    def test_second_call_is_silent(self):
        database = interval_db()
        query = parse_query("exists x. S(x)")
        with pytest.warns(DeprecationWarning):
            query_truth(query, database)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            query_truth(query, database)


class TestLpStatisticsShims:
    def test_lp_statistics_warns(self):
        from repro.geometry.simplex import lp_statistics

        with pytest.warns(DeprecationWarning, match="lp_statistics"):
            stats = lp_statistics()
        assert set(stats) == {"solves", "cache_hits"}

    def test_reset_lp_statistics_warns(self):
        from repro.geometry.simplex import reset_lp_statistics

        with pytest.warns(DeprecationWarning, match="reset_lp_statistics"):
            reset_lp_statistics()


class TestEvaluatorStatsShim:
    def test_stats_property_warns_and_stays_a_view(self):
        evaluator = Evaluator(RegionExtension.build(interval_db()))
        with pytest.warns(DeprecationWarning, match="Evaluator.stats"):
            view = evaluator.stats
        assert view["evaluations"] == evaluator.metrics.get("evaluations")

    def test_metrics_replacement_is_warning_free(self):
        evaluator = Evaluator(RegionExtension.build(interval_db()))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            evaluator.truth(parse_query("exists x. S(x)"))
            assert evaluator.metrics.get("evaluations") > 0
            assert "evaluations" in evaluator.metrics.snapshot()


class TestReplacementPathIsClean:
    def test_query_engine_emits_no_deprecation_warnings(self):
        database = interval_db()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = QueryEngine(database)
            assert engine.truth("exists x. S(x)")
            engine.evaluate("S(x) & x < 1")
            engine.stats()
