"""Unit tests for the fixed-point induction engines.

The region-sort engines (:mod:`repro.logic.fixpoint`) iterate over a
finite power set and must report exact stage counts; the element-sort
engine (:mod:`repro.naive.element_fixpoint`) iterates over constraint
relations and must surface divergence at its cap instead of looping.
"""

from fractions import Fraction

import pytest

from repro.logic.fixpoint import (
    FixpointRun,
    all_region_tuples,
    inflationary_fixpoint,
    least_fixpoint,
    partial_fixpoint,
)
from repro.naive.element_fixpoint import (
    bounded_saturation_body,
    define_naturals_body,
    naive_lfp,
)

F = Fraction


def reach_step(edges):
    """Monotone: close {(0,)} under the successor edges."""

    def step(current):
        new = {(0,)}
        for (node,) in current:
            new.add((node,))
            for a, b in edges:
                if a == node:
                    new.add((b,))
        return frozenset(new)

    return step


class TestLeastFixpoint:
    def test_chain_stage_count(self):
        # 0 → 1 → 2 → 3: one new node per stage, stabilise at stage 4.
        edges = [(0, 1), (1, 2), (2, 3)]
        run = least_fixpoint(reach_step(edges), max_stages=10)
        assert run.result == frozenset({(0,), (1,), (2,), (3,)})
        assert run.stages == 4
        assert run.converged

    def test_empty_step_converges_immediately(self):
        run = least_fixpoint(lambda current: frozenset(), max_stages=3)
        assert run.result == frozenset()
        assert run.stages == 0

    def test_non_monotone_step_raises(self):
        def alternating(current):
            return frozenset() if current else frozenset({(0,)})

        with pytest.raises(RuntimeError):
            least_fixpoint(alternating, max_stages=5)


class TestInflationaryFixpoint:
    def test_matches_lfp_on_monotone_step(self):
        edges = [(0, 1), (1, 2)]
        lfp = least_fixpoint(reach_step(edges), max_stages=10)
        ifp = inflationary_fixpoint(reach_step(edges), max_stages=10)
        assert ifp.result == lfp.result
        assert ifp.stages == lfp.stages

    def test_non_monotone_step_still_stabilises(self):
        # f drops everything once non-empty; IFP accumulates instead:
        # ∅ → {0} → {0} — a fixed point LFP-iteration would never reach.
        def spike(current):
            return frozenset() if current else frozenset({(0,)})

        run = inflationary_fixpoint(spike, max_stages=5)
        assert run.result == frozenset({(0,)})
        assert run.stages == 1
        assert run.converged


class TestPartialFixpoint:
    def test_fixed_point_reached(self):
        run = partial_fixpoint(reach_step([(0, 1)]))
        assert run.result == frozenset({(0,), (1,)})
        assert run.converged

    def test_cycle_without_fixpoint_yields_empty(self):
        # ∅ → {0} → {1} → {0} → …: a 2-cycle, never a fixed point.
        def flip(current):
            if (0,) in current:
                return frozenset({(1,)})
            return frozenset({(0,)})

        run = partial_fixpoint(flip)
        assert run.result == frozenset()
        assert not run.converged
        assert run.stages >= 2

    def test_run_is_immutable_telemetry(self):
        run = FixpointRun(frozenset(), 0, True)
        with pytest.raises(AttributeError):
            run.stages = 1


class TestAllRegionTuples:
    def test_lexicographic_square(self):
        assert list(all_region_tuples(2, 2)) == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_counts(self):
        assert len(list(all_region_tuples(3, 2))) == 9
        assert list(all_region_tuples(3, 0)) == [()]


class TestNaiveElementLFP:
    def test_bounded_saturation_converges(self):
        result = naive_lfp(("n",), bounded_saturation_body)
        assert result.converged
        assert not result.diverged
        assert result.fixpoint.contains((F(1),))
        assert result.fixpoint.contains((F(0),))
        assert not result.fixpoint.contains((F(3, 2),))

    def test_naturals_hit_the_divergence_cap(self):
        result = naive_lfp(("n",), define_naturals_body, max_stages=6)
        assert result.diverged
        assert result.fixpoint is None
        assert result.stages == 6
        # Stage k is {0, …, k-1}: the last stage is inspectable.
        assert result.last_stage.contains((F(5),))
        assert not result.last_stage.contains((F(6),))
        assert not result.last_stage.contains((F(1, 2),))
