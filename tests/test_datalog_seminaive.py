"""Tests for semi-naive datalog evaluation: the delta-based engine must
be observationally identical to naive iteration — same relations, same
stage counts, same divergence behaviour — on every program shape."""

from fractions import Fraction

import pytest

from repro.errors import EvaluationError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.datalog import evaluate_program, evaluate_program_seminaive
from repro.datalog.parser import parse_program
from repro.obs.metrics import get_registry
from repro.workloads.generators import interval_chain

F = Fraction


def db(text: str, arity: int = 1) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


def both(program, database, **kwargs):
    naive = evaluate_program(
        program, database, strategy="naive", **kwargs
    )
    fast = evaluate_program(
        program, database, strategy="seminaive", **kwargs
    )
    return naive, fast


def assert_identical(naive, fast):
    assert fast.converged == naive.converged
    assert fast.stages == naive.stages
    assert set(fast.relations) == set(naive.relations)
    for predicate in fast.relations:
        assert fast[predicate].equivalent(naive[predicate]), predicate


REACH = parse_program(
    "Reach(x) :- S(x), x = 0.\n"
    "Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.\n"
)

MUTUAL = parse_program(
    "A(x) :- S(x), x = 0.\n"
    "A(y) :- B(x), S(y), y - x <= 1, x - y <= 1.\n"
    "B(x) :- A(x).\n"
)

STRATIFIED = parse_program(
    "Reach(x) :- S(x), x = 0.\n"
    "Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.\n"
    "Stranded(x) :- S(x), !Reach(x).\n"
)

SUCCESSOR = parse_program(
    "P(x) :- S(x), x = 0.\n"
    "P(y) :- P(x), S(y), y = x + 1.\n"
)


class TestEquivalenceWithNaive:
    def test_recursive_reachability(self):
        for k in (1, 2, 3):
            naive, fast = both(REACH, interval_chain(k))
            assert_identical(naive, fast)
            assert fast.converged

    def test_nonrecursive_program(self):
        program = parse_program("Shift(y) :- S(x), y = x + 1.\n")
        naive, fast = both(program, db("0 <= x0 & x0 <= 1"))
        assert_identical(naive, fast)
        assert fast.stages <= 2

    def test_mutual_recursion(self):
        naive, fast = both(MUTUAL, db("0 <= x0 & x0 <= 2"))
        assert_identical(naive, fast)
        assert fast["B"].contains((F(2),))

    def test_stratified_negation(self):
        database = db("(0 <= x0 & x0 <= 2) | (5 <= x0 & x0 <= 6)")
        naive, fast = both(STRATIFIED, database)
        assert_identical(naive, fast)
        assert fast["Stranded"].contains((F(5),))
        assert not fast["Stranded"].contains((F(1),))

    def test_multiple_recursive_body_atoms(self):
        # Two in-stratum atoms in one rule: the delta rewriting fires the
        # rule once per recursive occurrence.
        program = parse_program(
            "T(x) :- S(x), x = 0.\n"
            "T(z) :- T(x), T(y), S(z), z - x <= 1, x - z <= 1, "
            "z - y <= 2, y - z <= 2.\n"
        )
        naive, fast = both(program, db("0 <= x0 & x0 <= 3"))
        assert_identical(naive, fast)
        assert fast.converged

    def test_divergence_cap_parity(self):
        naive, fast = both(SUCCESSOR, db("x0 >= 0"), max_stages=6)
        assert_identical(naive, fast)
        assert not fast.converged
        assert fast.stages == 6

    def test_stage_sizes_recorded(self):
        outcome = evaluate_program_seminaive(REACH, interval_chain(2))
        assert outcome.converged
        # One entry per sweep, including the final fixed-point check.
        assert len(outcome.stage_sizes) == outcome.stages + 1
        assert outcome.stage_sizes == sorted(outcome.stage_sizes)


class TestStrategyDispatch:
    def test_seminaive_is_the_default(self):
        registry = get_registry()
        before = registry.get("datalog.seminaive_runs")
        evaluate_program(REACH, interval_chain(1))
        assert registry.get("datalog.seminaive_runs") == before + 1

    def test_unknown_strategy_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_program(
                REACH, interval_chain(1), strategy="magic-sets"
            )

    def test_delta_metric_increments(self):
        registry = get_registry()
        before = registry.get("datalog.delta_disjuncts")
        evaluate_program_seminaive(REACH, interval_chain(2))
        assert registry.get("datalog.delta_disjuncts") > before

    def test_unstratifiable_still_rejected(self):
        program = parse_program(
            "A(x) :- S(x), !B(x).\n"
            "B(x) :- S(x), !A(x).\n"
        )
        with pytest.raises(EvaluationError):
            evaluate_program_seminaive(program, db("x0 >= 0"))
