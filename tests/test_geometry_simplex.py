"""Tests for the exact simplex LP solver, incl. scipy cross-checks."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LPError
from repro.geometry.fourier_motzkin import LinearConstraint
from repro.geometry.simplex import (
    LPStatus,
    feasible,
    solve_lp,
    strict_feasible_point,
)

F = Fraction


def le(coeffs, rhs):
    return LinearConstraint.make(coeffs, "<=", rhs)


def lt(coeffs, rhs):
    return LinearConstraint.make(coeffs, "<", rhs)


def eq(coeffs, rhs):
    return LinearConstraint.make(coeffs, "=", rhs)


class TestSolveLP:
    def test_simple_max(self):
        # max x + y st x <= 2, y <= 3, x + y <= 4
        result = solve_lp(
            [1, 1], [le([1, 0], 2), le([0, 1], 3), le([1, 1], 4)],
            maximize=True,
        )
        assert result.status is LPStatus.OPTIMAL
        assert result.value == F(4)

    def test_simple_min_free_vars(self):
        # min x st x >= -5  (free variable goes negative)
        result = solve_lp([1], [LinearConstraint.make([1], ">=", -5)])
        assert result.status is LPStatus.OPTIMAL
        assert result.value == F(-5)
        assert result.point == (F(-5),)

    def test_infeasible(self):
        result = solve_lp([1], [le([1], 0), LinearConstraint.make([1], ">=", 1)])
        assert result.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        result = solve_lp([1], [le([-1], 0)], maximize=True)
        assert result.status is LPStatus.UNBOUNDED
        assert result.point is not None

    def test_equality_constraints(self):
        # min x + y st x + y = 3, x - y = 1 -> unique point (2, 1)
        result = solve_lp([1, 1], [eq([1, 1], 3), eq([1, -1], 1)])
        assert result.status is LPStatus.OPTIMAL
        assert result.point == (F(2), F(1))

    def test_exact_rational_optimum(self):
        # max y st 3y <= 1 -> y = 1/3 exactly.
        result = solve_lp([0, 1], [le([0, 3], 1)], maximize=True)
        assert result.status is LPStatus.OPTIMAL
        assert result.value == F(1, 3)

    def test_strict_rejected(self):
        with pytest.raises(LPError):
            solve_lp([1], [lt([1], 1)])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(LPError):
            solve_lp([1, 2], [le([1], 1)])

    def test_degenerate_redundant_rows(self):
        # Duplicate constraints must not break phase transitions.
        rows = [le([1, 1], 2)] * 4 + [eq([1, -1], 0)]
        result = solve_lp([1, 1], rows, maximize=True)
        assert result.status is LPStatus.OPTIMAL
        assert result.value == F(2)
        assert result.point == (F(1), F(1))


class TestStrictFeasibility:
    def test_open_interval(self):
        point = strict_feasible_point([lt([1], 1), lt([-1], 0)])
        assert point is not None
        assert 0 < point[0] < 1

    def test_empty_open_system(self):
        assert not feasible([lt([1], 0), lt([-1], 0)])

    def test_boundary_only_closed_ok_open_not(self):
        # x <= 0 and x >= 0: only x = 0; x < 0 and x >= 0 infeasible.
        assert feasible([le([1], 0), le([-1], 0)])
        assert not feasible([lt([1], 0), le([-1], 0)])

    def test_equality_with_strict(self):
        # x + y = 1, x > 0, y > 0 -> open segment.
        point = strict_feasible_point(
            [eq([1, 1], 1), lt([-1, 0], 0), lt([0, -1], 0)]
        )
        assert point is not None
        x, y = point
        assert x > 0 and y > 0 and x + y == 1

    def test_empty_system_needs_dimension(self):
        assert strict_feasible_point([], dimension=2) == (F(0), F(0))
        with pytest.raises(LPError):
            strict_feasible_point([])

    def test_unbounded_open_region(self):
        assert feasible([lt([-1], -10)])  # x > 10


class TestScipyCrossCheck:
    """Exact optimum values must agree with floating-point scipy."""

    @given(
        data=st.lists(
            st.tuples(
                st.tuples(
                    st.integers(-5, 5), st.integers(-5, 5)
                ),
                st.integers(-10, 10),
            ),
            min_size=1,
            max_size=6,
        ),
        objective=st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
    )
    @settings(max_examples=40, deadline=None)
    def test_against_scipy(self, data, objective):
        from scipy.optimize import linprog

        constraints = [le(list(coeffs), rhs) for coeffs, rhs in data]
        # Keep the region bounded so both solvers report OPTIMAL.
        box = [le([1, 0], 50), le([-1, 0], 50), le([0, 1], 50), le([0, -1], 50)]
        exact = solve_lp(list(objective), constraints + box)
        a_ub = [list(map(float, c.coeffs)) for c in constraints + box]
        b_ub = [float(c.rhs) for c in constraints + box]
        approx = linprog(
            [float(c) for c in objective],
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=[(None, None), (None, None)],
            method="highs",
        )
        if exact.status is LPStatus.INFEASIBLE:
            assert not approx.success
        else:
            assert exact.status is LPStatus.OPTIMAL
            assert approx.success
            assert abs(float(exact.value) - approx.fun) < 1e-6
