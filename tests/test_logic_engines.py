"""Unit tests for the induction engines and rBIT denotation helpers."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.logic.fixpoint import (
    all_region_tuples,
    inflationary_fixpoint,
    least_fixpoint,
    partial_fixpoint,
)
from repro.logic.rbit import RBitDenotation, bit_is_set, unique_rational
from repro.logic.transitive_closure import (
    deterministic_edges,
    deterministic_transitive_closure,
    transitive_closure,
)

F = Fraction


class TestFixpointEngines:
    def test_lfp_reachability(self):
        edges = {(0,): {(1,)}, (1,): {(2,)}}

        def step(current):
            out = {(0,)}
            for node in current:
                out |= edges.get(node, set())
            return frozenset(out)

        run = least_fixpoint(step, 10)
        assert run.result == {(0,), (1,), (2,)}
        assert run.converged
        assert run.stages == 3

    def test_lfp_nonmonotone_raises(self):
        def flip(current):
            return frozenset() if current else frozenset({(0,)})

        with pytest.raises(RuntimeError):
            least_fixpoint(flip, 5)

    def test_ifp_union_semantics(self):
        def forget(current):
            # Non-inflationary step; IFP still accumulates.
            return frozenset({(len(current),)}) if len(current) < 3 \
                else frozenset()

        run = inflationary_fixpoint(forget, 10)
        assert run.result == {(0,), (1,), (2,)}

    def test_pfp_cycle_gives_empty(self):
        def flip(current):
            return frozenset() if current else frozenset({(0,)})

        run = partial_fixpoint(flip)
        assert run.result == frozenset()
        assert not run.converged

    def test_pfp_convergent(self):
        def close(current):
            return frozenset(current | {(0,)})

        run = partial_fixpoint(close)
        assert run.result == {(0,)}
        assert run.converged

    def test_all_region_tuples(self):
        tuples = list(all_region_tuples(3, 2))
        assert len(tuples) == 9
        assert tuples == sorted(tuples)

    @given(st.integers(1, 4), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_lfp_stage_bound_property(self, n, k):
        """A monotone induction over Reg^k stabilises within n^k stages."""
        universe = list(all_region_tuples(n, k))

        def grow(current):
            if len(current) < len(universe):
                return frozenset(universe[: len(current) + 1])
            return frozenset(universe)

        run = least_fixpoint(grow, n**k + 1)
        assert run.converged
        assert run.stages <= n**k + 1


class TestTransitiveClosureEngine:
    NODES = [(0,), (1,), (2,), (3,)]

    def test_simple_path(self):
        edges = {((0,), (1,)), ((1,), (2,))}
        closure = transitive_closure(self.NODES, edges)
        assert ((0,), (2,)) in closure
        assert ((0,), (1,)) in closure
        assert ((2,), (0,)) not in closure

    def test_non_reflexive_by_default(self):
        edges = {((0,), (1,))}
        closure = transitive_closure(self.NODES, edges)
        assert ((0,), (0,)) not in closure
        reflexive = transitive_closure(self.NODES, edges, reflexive=True)
        assert ((3,), (3,)) in reflexive

    def test_cycle(self):
        edges = {((0,), (1,)), ((1,), (0,))}
        closure = transitive_closure(self.NODES, edges)
        assert ((0,), (0,)) in closure
        assert ((1,), (1,)) in closure

    def test_deterministic_edges_restriction(self):
        edges = {((0,), (1,)), ((0,), (2,)), ((1,), (2,))}
        det = deterministic_edges(self.NODES, edges)
        assert det == {((1,), (2,))}

    def test_dtc_subset_of_tc(self):
        edges = {((0,), (1,)), ((0,), (2,)), ((1,), (2,)), ((2,), (3,))}
        tc = transitive_closure(self.NODES, edges)
        dtc = deterministic_transitive_closure(self.NODES, edges)
        assert dtc <= tc
        assert ((1,), (3,)) in dtc
        assert ((0,), (3,)) not in dtc  # 0 has two successors

    @given(
        st.sets(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_tc_transitivity_property(self, raw_edges):
        nodes = [(i,) for i in range(5)]
        edges = {((a,), (b,)) for a, b in raw_edges}
        closure = transitive_closure(nodes, edges)
        for left, middle in closure:
            for middle2, right in closure:
                if middle == middle2:
                    assert (left, right) in closure


class TestRBitHelpers:
    def test_bit_is_set(self):
        # 6 = 0b110: bits 2 and 3.
        assert not bit_is_set(6, 1)
        assert bit_is_set(6, 2)
        assert bit_is_set(6, 3)
        with pytest.raises(ValueError):
            bit_is_set(6, 0)

    def test_unique_rational(self):
        single = ConstraintRelation.make(("x",), parse_formula("2*x = 3"))
        assert unique_rational(single) == F(3, 2)
        interval = ConstraintRelation.make(
            ("x",), parse_formula("0 < x & x < 1")
        )
        assert unique_rational(interval) is None
        empty = ConstraintRelation.make(("x",), parse_formula("x < x"))
        assert unique_rational(empty) is None

    def test_unique_rational_multi_disjunct(self):
        same = ConstraintRelation.make(
            ("x",), parse_formula("x = 2 | 2*x = 4")
        )
        assert unique_rational(same) == F(2)
        different = ConstraintRelation.make(
            ("x",), parse_formula("x = 2 | x = 3")
        )
        assert unique_rational(different) is None

    def test_unique_rational_arity_check(self):
        with pytest.raises(ValueError):
            unique_rational(
                ConstraintRelation.make(("x", "y"), parse_formula("x = y"))
            )

    def test_denotation_bits(self):
        deno = RBitDenotation(F(3, 4))  # numerator 0b11, denominator 0b100
        assert deno.holds(0, 1, 0, 3, False)
        assert deno.holds(0, 2, 0, 3, False)
        assert not deno.holds(0, 1, 0, 1, False)
        assert not deno.holds(0, 3, 0, 3, False)

    def test_denotation_zero_case(self):
        deno = RBitDenotation(F(0))
        assert deno.holds(1, None, 1, None, True)
        assert not deno.holds(1, None, 1, None, False)
        assert not deno.holds(0, 1, 0, 1, True)

    def test_denotation_empty(self):
        deno = RBitDenotation(None)
        assert not deno.holds(0, 1, 0, 1, True)

    def test_denotation_negative_value_uses_magnitude(self):
        deno = RBitDenotation(F(-3, 1))
        assert deno.holds(0, 1, 0, 1, False)
        assert deno.holds(0, 2, 0, 1, False)
