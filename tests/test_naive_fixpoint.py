"""Tests for the naive element-sort LFP — the introduction's warning."""

from fractions import Fraction

from repro.naive.element_fixpoint import (
    bounded_saturation_body,
    define_naturals_body,
    naive_lfp,
)

F = Fraction


class TestDivergence:
    def test_naturals_diverge(self):
        """The paper's ℕ-defining induction never converges."""
        result = naive_lfp(("n",), define_naturals_body, max_stages=12)
        assert result.diverged
        assert result.fixpoint is None
        assert result.stages == 12

    def test_natural_stages_are_initial_segments(self):
        result = naive_lfp(("n",), define_naturals_body, max_stages=6)
        stage = result.last_stage
        # After k stages the set is {0, 1, ..., k-1}.
        for value in range(6):
            assert stage.contains((F(value),))
        assert not stage.contains((F(6),))
        assert not stage.contains((F(1, 2),))

    def test_representation_grows_monotonically(self):
        sizes = []
        for cap in (2, 4, 6, 8):
            result = naive_lfp(("n",), define_naturals_body, max_stages=cap)
            sizes.append(result.last_stage.representation_size())
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]


class TestConvergence:
    def test_bounded_saturation_converges(self):
        result = naive_lfp(("n",), bounded_saturation_body, max_stages=10)
        assert result.converged
        assert result.fixpoint is not None
        # The fixed point is [0, 1].
        assert result.fixpoint.contains((F(0),))
        assert result.fixpoint.contains((F(1),))
        assert result.fixpoint.contains((F(3, 4),))
        assert not result.fixpoint.contains((F(5, 4),))
        assert not result.fixpoint.contains((F(-1, 4),))

    def test_empty_induction_converges_immediately(self):
        from repro.constraints.formula import FALSE

        result = naive_lfp(("n",), lambda stage: FALSE, max_stages=3)
        assert result.converged
        assert result.stages == 0
        assert result.fixpoint.is_empty()


class TestContrastWithRegionLogic:
    def test_region_fixpoints_always_terminate(self):
        """The same style of reachability induction, restricted to the
        finite region sort, terminates by construction (Section 5)."""
        from repro.constraints.database import ConstraintDatabase
        from repro.constraints.parser import parse_formula
        from repro.logic.evaluator import Evaluator
        from repro.logic.parser import parse_query
        from repro.twosorted.structure import RegionExtension

        database = ConstraintDatabase.from_formula(
            parse_formula("0 <= x0 & x0 <= 3"), 1
        )
        extension = RegionExtension.build(database)
        evaluator = Evaluator(extension)
        query = parse_query(
            "exists X, Y. [lfp M(R, Rp). (R = Rp) | "
            "(exists Z. M(R, Z) & adj(Z, Rp))](X, Y)"
        )
        assert evaluator.truth(query)
        # The induction converged within the |Reg|^2 bound.
        assert evaluator.metrics.get("fixpoint_stages") <= \
            len(extension.regions) ** 2
