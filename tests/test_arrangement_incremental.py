"""Tests for incremental arrangement construction.

The incremental builder must produce the same arrangement (hyperplanes,
sign vectors, dimensions, membership bits) as the batch DFS builder —
witness points may differ, everything combinatorial must agree.  Also
checks the planar Euler relation V − E + F = 1 as a global sanity
invariant for 2-D arrangements.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.hyperplane import Hyperplane
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.arrangement.builder import build_arrangement
from repro.arrangement.hyperplanes import hyperplanes_of_relation
from repro.arrangement.incremental import (
    IncrementalArrangement,
    build_arrangement_incremental,
)

F = Fraction


def combinatorial_signature(arrangement):
    return sorted(
        (face.signs, face.dimension, face.in_relation)
        for face in arrangement.faces
    )


def triangle_relation():
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


class TestIncrementalMatchesBatch:
    def test_triangle(self):
        relation = triangle_relation()
        batch = build_arrangement(relation)
        incremental = build_arrangement_incremental(relation)
        assert combinatorial_signature(batch) == \
            combinatorial_signature(incremental)
        assert incremental.face_count_by_dimension() == {2: 7, 1: 9, 0: 3}

    def test_explicit_planes(self):
        planes = [
            Hyperplane.make([1, 0], 0),
            Hyperplane.make([0, 1], 0),
            Hyperplane.make([1, 1], 2),
        ]
        batch = build_arrangement(hyperplanes=planes, dimension=2)
        incremental = build_arrangement_incremental(
            hyperplanes=planes, dimension=2
        )
        assert combinatorial_signature(batch) == \
            combinatorial_signature(incremental)

    @given(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                      st.integers(-2, 2)).filter(
                lambda t: (t[0], t[1]) != (0, 0)
            ),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_agreement_property(self, rows):
        planes = sorted(
            {Hyperplane.make([a, b], c) for a, b, c in rows},
            key=lambda h: (h.normal, h.offset),
        )
        batch = build_arrangement(hyperplanes=planes, dimension=2)
        incremental = build_arrangement_incremental(
            hyperplanes=planes, dimension=2
        )
        assert combinatorial_signature(batch) == \
            combinatorial_signature(incremental)


class TestIncrementalMechanics:
    def test_empty_arrangement(self):
        incremental = IncrementalArrangement(2)
        assert len(incremental) == 1
        arrangement = incremental.to_arrangement()
        assert arrangement.face_count_by_dimension() == {2: 1}

    def test_insert_counts(self):
        incremental = IncrementalArrangement(1)
        created = incremental.insert(Hyperplane.make([1], 0))
        # One cell became vertex + two rays: 2 new faces.
        assert created == 2
        assert len(incremental) == 3
        created = incremental.insert(Hyperplane.make([1], 1))
        assert created == 2
        assert len(incremental) == 5

    def test_duplicate_hyperplane_creates_nothing(self):
        incremental = IncrementalArrangement(1)
        plane = Hyperplane.make([1], 0)
        incremental.insert(plane)
        before = len(incremental)
        created = incremental.insert(Hyperplane.make([2], 0))  # same plane
        assert created == 0
        assert len(incremental) == before
        # Sign vectors grew by one consistent column.
        arrangement = incremental.to_arrangement()
        for face in arrangement:
            assert face.signs[0] == face.signs[1]

    def test_dimension_checks(self):
        with pytest.raises(GeometryError):
            IncrementalArrangement(0)
        incremental = IncrementalArrangement(2)
        with pytest.raises(GeometryError):
            incremental.insert(Hyperplane.make([1], 0))
        with pytest.raises(GeometryError):
            build_arrangement_incremental()


class TestEulerRelation:
    """For any line arrangement partitioning the plane:
    #vertices − #edges + #cells = 1 (Euler characteristic of ℝ²)."""

    @given(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                      st.integers(-3, 3)).filter(
                lambda t: (t[0], t[1]) != (0, 0)
            ),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_euler_characteristic(self, rows):
        planes = list({Hyperplane.make([a, b], c) for a, b, c in rows})
        arrangement = build_arrangement_incremental(
            hyperplanes=planes, dimension=2
        )
        census = arrangement.face_count_by_dimension()
        euler = (
            census.get(0, 0) - census.get(1, 0) + census.get(2, 0)
        )
        assert euler == 1

    def test_euler_on_one_dimension(self):
        # On the line: #points - #intervals = -1 (χ(ℝ) = -1... with
        # n points and n+1 open intervals: n - (n+1) = -1).
        planes = [Hyperplane.make([1], i) for i in range(4)]
        arrangement = build_arrangement_incremental(
            hyperplanes=planes, dimension=1
        )
        census = arrangement.face_count_by_dimension()
        assert census[0] - census[1] == -1


class TestRetraction:
    """retract() is insert()'s inverse on the face lattice."""

    def test_insert_then_retract_restores_combinatorics(self):
        relation = triangle_relation()
        incremental = IncrementalArrangement(2)
        incremental.insert_all(hyperplanes_of_relation(relation))
        reference = combinatorial_signature(
            incremental.to_arrangement(relation)
        )
        extra = Hyperplane.make([1, 1], 7)
        created = incremental.insert(extra)
        assert created > 0
        merged = incremental.retract(extra)
        assert merged == created
        assert combinatorial_signature(
            incremental.to_arrangement(relation)
        ) == reference

    def test_retract_interior_plane_matches_batch(self):
        """Retracting from the middle (not LIFO) still lands on the
        batch arrangement of the remaining planes."""
        planes = [
            Hyperplane.make([1, 0], 0),
            Hyperplane.make([0, 1], 0),
            Hyperplane.make([1, 1], 1),
        ]
        incremental = IncrementalArrangement(2)
        incremental.insert_all(planes)
        incremental.retract(planes[1])
        remaining = [planes[0], planes[2]]
        incremental.reorder(remaining)
        batch = build_arrangement(
            hyperplanes=remaining, dimension=2
        )
        assert combinatorial_signature(incremental.to_arrangement()) \
            == combinatorial_signature(batch)

    def test_retract_duplicate_drops_column_only(self):
        incremental = IncrementalArrangement(1)
        plane = Hyperplane.make([1], 0)
        incremental.insert(plane)
        incremental.insert(Hyperplane.make([2], 0))  # same plane
        faces_before = len(incremental)
        merged = incremental.retract(plane)
        assert merged == 0
        assert len(incremental) == faces_before
        # The surviving column still separates the line at 0.
        assert len(incremental.hyperplanes) == 1

    def test_retract_unknown_plane_raises(self):
        incremental = IncrementalArrangement(1)
        incremental.insert(Hyperplane.make([1], 0))
        with pytest.raises(GeometryError):
            incremental.retract(Hyperplane.make([1], 5))

    def test_retract_to_empty(self):
        incremental = IncrementalArrangement(2)
        plane = Hyperplane.make([1, 0], 0)
        incremental.insert(plane)
        incremental.retract(plane)
        assert len(incremental) == 1
        assert incremental.to_arrangement().face_count_by_dimension() \
            == {2: 1}

    @given(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                      st.integers(-3, 3)).filter(
                lambda t: (t[0], t[1]) != (0, 0)
            ),
            min_size=2,
            max_size=4,
            unique=True,
        ),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_retract_any_plane_matches_batch(self, rows, data):
        planes = list({Hyperplane.make([a, b], c) for a, b, c in rows})
        victim = data.draw(st.sampled_from(planes), label="retracted")
        incremental = IncrementalArrangement(2)
        incremental.insert_all(planes)
        incremental.retract(victim)
        remaining = [p for p in planes if p != victim]
        incremental.reorder(remaining)
        batch = build_arrangement(hyperplanes=remaining, dimension=2)
        assert combinatorial_signature(incremental.to_arrangement()) \
            == combinatorial_signature(batch)


class TestCounterParity:
    """Both construction paths feed one coherent counter family.

    ``arrangement.builds`` moves by one and ``arrangement.faces`` by
    the face count per frozen arrangement, whether the batch DFS or an
    incremental freeze produced it; the incremental-only counters
    (``insertions``/``split_faces``/``retractions``/``merged_faces``)
    move only on the incremental path (docs/OBSERVABILITY.md)."""

    def test_builds_and_faces_move_identically(self):
        from repro.obs.metrics import get_registry

        relation = triangle_relation()
        registry = get_registry()

        before = (registry.get("arrangement.builds"),
                  registry.get("arrangement.faces"))
        batch = build_arrangement(relation)
        batch_delta = (
            registry.get("arrangement.builds") - before[0],
            registry.get("arrangement.faces") - before[1],
        )

        incremental = IncrementalArrangement(2)
        incremental.insert_all(hyperplanes_of_relation(relation))
        before = (registry.get("arrangement.builds"),
                  registry.get("arrangement.faces"))
        frozen = incremental.to_arrangement(relation)
        incremental_delta = (
            registry.get("arrangement.builds") - before[0],
            registry.get("arrangement.faces") - before[1],
        )

        assert batch_delta == (1, len(batch.faces))
        assert incremental_delta == (1, len(frozen.faces))
        assert len(batch.faces) == len(frozen.faces)

    def test_incremental_only_counters_stay_put_on_batch_path(self):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        names = (
            "arrangement.insertions",
            "arrangement.split_faces",
            "arrangement.retractions",
            "arrangement.merged_faces",
        )
        before = {name: registry.get(name) for name in names}
        build_arrangement(triangle_relation())
        for name in names:
            assert registry.get(name) == before[name], name

    def test_mutation_counters_move_on_incremental_path(self):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        incremental = IncrementalArrangement(1)
        plane = Hyperplane.make([1], 0)
        before_ins = registry.get("arrangement.insertions")
        before_ret = registry.get("arrangement.retractions")
        incremental.insert(plane)
        incremental.retract(plane)
        assert registry.get("arrangement.insertions") == before_ins + 1
        assert registry.get("arrangement.retractions") == before_ret + 1
