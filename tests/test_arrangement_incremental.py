"""Tests for incremental arrangement construction.

The incremental builder must produce the same arrangement (hyperplanes,
sign vectors, dimensions, membership bits) as the batch DFS builder —
witness points may differ, everything combinatorial must agree.  Also
checks the planar Euler relation V − E + F = 1 as a global sanity
invariant for 2-D arrangements.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.hyperplane import Hyperplane
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.arrangement.builder import build_arrangement
from repro.arrangement.incremental import (
    IncrementalArrangement,
    build_arrangement_incremental,
)

F = Fraction


def combinatorial_signature(arrangement):
    return sorted(
        (face.signs, face.dimension, face.in_relation)
        for face in arrangement.faces
    )


def triangle_relation():
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


class TestIncrementalMatchesBatch:
    def test_triangle(self):
        relation = triangle_relation()
        batch = build_arrangement(relation)
        incremental = build_arrangement_incremental(relation)
        assert combinatorial_signature(batch) == \
            combinatorial_signature(incremental)
        assert incremental.face_count_by_dimension() == {2: 7, 1: 9, 0: 3}

    def test_explicit_planes(self):
        planes = [
            Hyperplane.make([1, 0], 0),
            Hyperplane.make([0, 1], 0),
            Hyperplane.make([1, 1], 2),
        ]
        batch = build_arrangement(hyperplanes=planes, dimension=2)
        incremental = build_arrangement_incremental(
            hyperplanes=planes, dimension=2
        )
        assert combinatorial_signature(batch) == \
            combinatorial_signature(incremental)

    @given(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                      st.integers(-2, 2)).filter(
                lambda t: (t[0], t[1]) != (0, 0)
            ),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_agreement_property(self, rows):
        planes = sorted(
            {Hyperplane.make([a, b], c) for a, b, c in rows},
            key=lambda h: (h.normal, h.offset),
        )
        batch = build_arrangement(hyperplanes=planes, dimension=2)
        incremental = build_arrangement_incremental(
            hyperplanes=planes, dimension=2
        )
        assert combinatorial_signature(batch) == \
            combinatorial_signature(incremental)


class TestIncrementalMechanics:
    def test_empty_arrangement(self):
        incremental = IncrementalArrangement(2)
        assert len(incremental) == 1
        arrangement = incremental.to_arrangement()
        assert arrangement.face_count_by_dimension() == {2: 1}

    def test_insert_counts(self):
        incremental = IncrementalArrangement(1)
        created = incremental.insert(Hyperplane.make([1], 0))
        # One cell became vertex + two rays: 2 new faces.
        assert created == 2
        assert len(incremental) == 3
        created = incremental.insert(Hyperplane.make([1], 1))
        assert created == 2
        assert len(incremental) == 5

    def test_duplicate_hyperplane_creates_nothing(self):
        incremental = IncrementalArrangement(1)
        plane = Hyperplane.make([1], 0)
        incremental.insert(plane)
        before = len(incremental)
        created = incremental.insert(Hyperplane.make([2], 0))  # same plane
        assert created == 0
        assert len(incremental) == before
        # Sign vectors grew by one consistent column.
        arrangement = incremental.to_arrangement()
        for face in arrangement:
            assert face.signs[0] == face.signs[1]

    def test_dimension_checks(self):
        with pytest.raises(GeometryError):
            IncrementalArrangement(0)
        incremental = IncrementalArrangement(2)
        with pytest.raises(GeometryError):
            incremental.insert(Hyperplane.make([1], 0))
        with pytest.raises(GeometryError):
            build_arrangement_incremental()


class TestEulerRelation:
    """For any line arrangement partitioning the plane:
    #vertices − #edges + #cells = 1 (Euler characteristic of ℝ²)."""

    @given(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                      st.integers(-3, 3)).filter(
                lambda t: (t[0], t[1]) != (0, 0)
            ),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_euler_characteristic(self, rows):
        planes = list({Hyperplane.make([a, b], c) for a, b, c in rows})
        arrangement = build_arrangement_incremental(
            hyperplanes=planes, dimension=2
        )
        census = arrangement.face_count_by_dimension()
        euler = (
            census.get(0, 0) - census.get(1, 0) + census.get(2, 0)
        )
        assert euler == 1

    def test_euler_on_one_dimension(self):
        # On the line: #points - #intervals = -1 (χ(ℝ) = -1... with
        # n points and n+1 open intervals: n - (n+1) = -1).
        planes = [Hyperplane.make([1], i) for i in range(4)]
        arrangement = build_arrangement_incremental(
            hyperplanes=planes, dimension=1
        )
        census = arrangement.face_count_by_dimension()
        assert census[0] - census[1] == -1
