"""Tests for Fourier–Motzkin elimination.

The key property: a point satisfies the projected system iff some value of
the eliminated variable completes it to a solution of the original system.
We check both directions — soundness by witness reconstruction, and
completeness by sampling.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.fourier_motzkin import (
    LinearConstraint,
    Rel,
    constraints_dimension,
    eliminate_variable,
    eliminate_variables,
    simplify_system,
)
from repro.geometry.simplex import feasible, strict_feasible_point

F = Fraction


def c(coeffs, rel, rhs):
    return LinearConstraint.make(coeffs, rel, rhs)


class TestConstraintBasics:
    def test_ge_normalised(self):
        row = c([1, 2], ">=", 3)
        assert row.rel is Rel.LE
        assert row.coeffs == (F(-1), F(-2))
        assert row.rhs == F(-3)

    def test_gt_normalised(self):
        row = c([1], ">", 0)
        assert row.rel is Rel.LT
        assert row.satisfied_by((F(1),))
        assert not row.satisfied_by((F(-1),))
        assert not row.satisfied_by((F(0),))

    def test_satisfied_by(self):
        row = c([1, 1], "<=", 2)
        assert row.satisfied_by((F(1), F(1)))
        assert not row.satisfied_by((F(2), F(1)))

    def test_eq_satisfied(self):
        row = c([2, -1], "=", 0)
        assert row.satisfied_by((F(1), F(2)))
        assert not row.satisfied_by((F(1), F(1)))

    def test_trivial_rows(self):
        assert c([0, 0], "<=", 1).trivially_true()
        assert c([0, 0], "<", 0).trivially_false()
        assert not c([1, 0], "<=", 1).is_trivial()

    def test_unknown_relation(self):
        with pytest.raises(ValueError):
            c([1], "!=", 0)

    def test_scaled_positive_only(self):
        row = c([1, 2], "<=", 3)
        assert row.scaled(F(2)).rhs == F(6)
        with pytest.raises(ValueError):
            row.scaled(F(-1))

    def test_mixed_dimension_detected(self):
        with pytest.raises(Exception):
            constraints_dimension([c([1], "<=", 0), c([1, 2], "<=", 0)])


class TestElimination:
    def test_interval_projection(self):
        # 0 <= x <= y, y <= 5  -- eliminating x leaves 0 <= y <= 5.
        system = [c([1, -1], "<=", 0), c([-1, 0], "<=", 0), c([0, 1], "<=", 5)]
        projected = eliminate_variable(system, 0)
        assert all(row.coeffs[0] == 0 for row in projected)
        # y = 3 admissible, y = -1 not.
        assert all(row.satisfied_by((F(0), F(3))) for row in projected)
        assert not all(row.satisfied_by((F(0), F(-1))) for row in projected)

    def test_strictness_propagates(self):
        # x > 0 and x < y  ->  y > 0 strictly.
        system = [c([-1, 0], "<", 0), c([1, -1], "<", 0)]
        projected = simplify_system(eliminate_variable(system, 0))
        assert projected is not None
        assert len(projected) == 1
        row = projected[0]
        assert row.rel is Rel.LT
        assert not row.satisfied_by((F(0), F(0)))
        assert row.satisfied_by((F(0), F(1)))

    def test_equality_substitution(self):
        # x = y + 1, x <= 3  ->  y <= 2.
        system = [c([1, -1], "=", 1), c([1, 0], "<=", 3)]
        projected = eliminate_variable(system, 0)
        assert len(projected) == 1
        assert projected[0].satisfied_by((F(0), F(2)))
        assert not projected[0].satisfied_by((F(0), F(3)))

    def test_unbounded_variable_drops_out(self):
        # Only a lower bound on x: projection is unconstrained.
        system = [c([-1, 0], "<=", 0), c([0, 1], "<=", 7)]
        projected = eliminate_variable(system, 0)
        assert len(projected) == 1
        assert projected[0].coeffs == (F(0), F(0), F(1))[1:] or projected[
            0
        ].coeffs == (F(0), F(1))

    def test_eliminate_variables_infeasible_collapses(self):
        system = [c([1], "<", 0), c([-1], "<", 0)]
        projected = eliminate_variables(system, [0])
        assert len(projected) == 1
        assert projected[0].trivially_false()

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            eliminate_variable([c([1], "<=", 0)], 3)


@st.composite
def small_systems(draw):
    n_rows = draw(st.integers(1, 5))
    rows = []
    for __ in range(n_rows):
        coeffs = [draw(st.integers(-3, 3)) for __ in range(3)]
        rel = draw(st.sampled_from(["<=", "<", "="]))
        rhs = draw(st.integers(-5, 5))
        rows.append(c(coeffs, rel, rhs))
    return rows


class TestEliminationSemantics:
    """FM's defining property, checked by exact LP on random systems."""

    @given(system=small_systems())
    @settings(max_examples=60, deadline=None)
    def test_projection_preserves_feasibility(self, system):
        projected = eliminate_variable(system, 0)
        cleaned = simplify_system(projected)
        original_feasible = feasible(system, dimension=3)
        projected_feasible = cleaned is not None and feasible(
            cleaned, dimension=3
        )
        assert original_feasible == projected_feasible

    @given(system=small_systems())
    @settings(max_examples=60, deadline=None)
    def test_projected_point_lifts(self, system):
        """Any point of the projection extends to a full solution."""
        projected = simplify_system(eliminate_variable(system, 0))
        if projected is None:
            return
        witness = strict_feasible_point(projected, dimension=3)
        if witness is None:
            return
        # Fix the last two coordinates; the 1-D system over x0 must be
        # feasible.
        one_d = []
        for row in system:
            rest = sum(
                coeff * value
                for coeff, value in zip(row.coeffs[1:], witness[1:])
            )
            one_d.append(
                LinearConstraint((row.coeffs[0],), row.rel, row.rhs - rest)
            )
        assert feasible(one_d, dimension=1)
