"""The Theorem 6.4 definability claims, checked against the geometry.

For every region of several databases, the RegFO formulas of
``repro.queries.definable`` must agree with the engine's geometric
predicates: singleton ⇔ dimension 0, bounded ⇔ is_bounded(), and
lex_less must reproduce the canonical order of the 0-dimensional
regions.
"""

import pytest

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.logic.evaluator import Evaluator
from repro.queries.definable import (
    bounded_region_formula,
    lex_less_formula,
    singleton_region_formula,
)
from repro.twosorted.structure import RegionExtension


def db(text: str, arity: int) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


DATABASES = [
    db("(0 < x0 & x0 < 1) | x0 = 3", 1),
    db("(0 <= x0 & x0 <= 1) | (2 <= x0 & x0 <= 3)", 1),
    db("x0 >= 0 & x1 >= 0 & x0 + x1 <= 1", 2),
]


@pytest.mark.parametrize("database", DATABASES)
def test_singleton_formula_matches_dimension(database):
    extension = RegionExtension.build(database)
    evaluator = Evaluator(extension)
    arity = extension.spatial.arity
    formula = singleton_region_formula(arity)
    for region in extension.regions:
        expected = region.dimension == 0
        assert evaluator.truth(formula, {"R": region.index}) == expected


@pytest.mark.parametrize("database", DATABASES)
def test_bounded_formula_matches_geometry(database):
    extension = RegionExtension.build(database)
    evaluator = Evaluator(extension)
    arity = extension.spatial.arity
    formula = bounded_region_formula(arity)
    for region in extension.regions:
        assert evaluator.truth(formula, {"R": region.index}) == \
            region.is_bounded()


@pytest.mark.parametrize("database", DATABASES[:2])
def test_lex_less_reproduces_canonical_order(database):
    extension = RegionExtension.build(database)
    evaluator = Evaluator(extension)
    arity = extension.spatial.arity
    formula = lex_less_formula(arity)
    zero_dim = extension.zero_dimensional_regions()
    for i, left in enumerate(zero_dim):
        for j, right in enumerate(zero_dim):
            expected = i < j  # canonical order is lex on sample points
            actual = evaluator.truth(
                formula, {"R1": left.index, "R2": right.index}
            )
            assert actual == expected, (left.index, right.index)


def test_lex_less_2d_order():
    database = DATABASES[2]
    extension = RegionExtension.build(database)
    evaluator = Evaluator(extension)
    formula = lex_less_formula(2)
    zero_dim = extension.zero_dimensional_regions()
    samples = [r.sample_point() for r in zero_dim]
    assert samples == sorted(samples)
    for i, left in enumerate(zero_dim):
        for j, right in enumerate(zero_dim):
            assert evaluator.truth(
                formula, {"R1": left.index, "R2": right.index}
            ) == (samples[i] < samples[j])
