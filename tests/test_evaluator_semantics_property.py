"""Randomised semantic soundness of the evaluator.

Ground truth for quantifier-free element-only queries is direct
pointwise evaluation; ground truth for one-variable existential /
universal queries is checking witnesses over a fine rational grid plus
the relation's own sample points.  Hypothesis drives random formulas
and databases through both paths.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.logic.ast import (
    ExistsElem,
    ForallElem,
    LinearAtom,
    RAnd,
    RNot,
    ROr,
    RegFormula,
    RelationAtom,
)
from repro.logic.evaluator import Evaluator
from repro.twosorted.structure import RegionExtension
from repro.constraints.atoms import Atom, Op
from repro.constraints.terms import LinearTerm

F = Fraction

_OPS = [Op.LT, Op.LE, Op.EQ, Op.GE, Op.GT]


@st.composite
def databases(draw):
    pieces = draw(
        st.lists(
            st.tuples(st.integers(-3, 3), st.integers(1, 3)),
            min_size=1,
            max_size=3,
        )
    )
    parts = [
        f"({lo} <= x0 & x0 <= {lo + width})" for lo, width in pieces
    ]
    return ConstraintDatabase.from_formula(
        parse_formula(" | ".join(parts)), 1
    )


@st.composite
def qf_queries(draw, depth=2) -> RegFormula:
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.integers(0, 1))
        if kind == 0:
            coeff = draw(st.integers(1, 3))
            rhs = draw(st.integers(-4, 4))
            op = draw(st.sampled_from(_OPS))
            return LinearAtom(
                Atom(LinearTerm.make({"x": coeff}, -rhs), op)
            )
        shift = draw(st.integers(-2, 2))
        return RelationAtom(
            "S", (LinearTerm.variable("x") + shift,)
        )
    connective = draw(st.integers(0, 2))
    if connective == 0:
        return RNot(draw(qf_queries(depth=depth - 1)))
    left = draw(qf_queries(depth=depth - 1))
    right = draw(qf_queries(depth=depth - 1))
    cls = RAnd if connective == 1 else ROr
    return cls((left, right))


def pointwise(formula: RegFormula, database, value: Fraction) -> bool:
    """Direct semantics of an element-only QF query at a point."""
    if isinstance(formula, LinearAtom):
        return formula.atom.holds_at({"x": value})
    if isinstance(formula, RelationAtom):
        relation = database.relation(formula.name)
        point = tuple(
            term.evaluate({"x": value}) for term in formula.args
        )
        return relation.contains(point)
    if isinstance(formula, RNot):
        return not pointwise(formula.operand, database, value)
    if isinstance(formula, RAnd):
        return all(
            pointwise(op, database, value) for op in formula.operands
        )
    if isinstance(formula, ROr):
        return any(
            pointwise(op, database, value) for op in formula.operands
        )
    raise AssertionError(type(formula))


GRID = [F(n, 3) for n in range(-18, 19)]


class TestEvaluatorSoundness:
    @given(database=databases(), query=qf_queries())
    @settings(max_examples=60, deadline=None)
    def test_qf_queries_match_pointwise(self, database, query):
        extension = RegionExtension.build(database)
        answer = Evaluator(extension).evaluate(query)
        for value in GRID:
            point = (value,)
            if answer.arity == 0:
                break
            assert answer.contains(point) == pointwise(
                query, database, value
            )

    @given(database=databases(), query=qf_queries(depth=1))
    @settings(max_examples=40, deadline=None)
    def test_exists_matches_grid_witnesses(self, database, query):
        extension = RegionExtension.build(database)
        evaluator = Evaluator(extension)
        closed = ExistsElem("x", query)
        truth = evaluator.truth(closed)
        grid_truth = any(
            pointwise(query, database, value) for value in GRID
        )
        # The grid can miss witnesses but never invent them.
        if grid_truth:
            assert truth
        # And the evaluator's own witnesses must be genuine.
        answer = evaluator.evaluate(query)
        if answer.arity == 1:
            for point in answer.sample_points():
                assert pointwise(query, database, point[0])

    @given(database=databases(), query=qf_queries(depth=1))
    @settings(max_examples=40, deadline=None)
    def test_forall_dual(self, database, query):
        extension = RegionExtension.build(database)
        evaluator = Evaluator(extension)
        forall = ForallElem("x", query)
        exists_not = ExistsElem("x", RNot(query))
        assert evaluator.truth(forall) == (not evaluator.truth(exists_not))
