"""Smoke tests for the reproduction-summary runner."""

from repro import experiments


class TestRunnerChecks:
    def test_fast_checks_pass_individually(self):
        # The cheapest checks run in well under a second each.
        for check in (experiments._e1, experiments._e2, experiments._e3,
                      experiments._e5, experiments._e13):
            identifier, claim, measured, ok = check()
            assert ok, (identifier, claim, measured)
            assert identifier.startswith("E")
            assert claim and measured

    def test_check_registry_covers_all_experiments(self):
        identifiers = [check()[0] for check in experiments.CHECKS[:3]]
        assert identifiers == ["E1", "E2", "E3"]
        assert len(experiments.CHECKS) == 16  # E1..E15 + E7b

    def test_main_exit_code_contract(self, monkeypatch, capsys):
        # Replace the registry with two tiny stub checks to validate the
        # table printing and exit-code behaviour without the full cost.
        monkeypatch.setattr(
            experiments, "CHECKS",
            [lambda: ("EX", "stub claim", "stub", True)],
        )
        assert experiments.main() == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out

        monkeypatch.setattr(
            experiments, "CHECKS",
            [lambda: ("EX", "stub claim", "stub", False)],
        )
        assert experiments.main() == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
