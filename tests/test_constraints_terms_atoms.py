"""Tests for linear terms and atoms."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NonLinearTermError
from repro.constraints.atoms import Atom, Op, atom_from_constraint
from repro.constraints.terms import LinearTerm, term_sum

F = Fraction
x = LinearTerm.variable("x")
y = LinearTerm.variable("y")


class TestTermArithmetic:
    def test_build_and_str(self):
        term = 2 * x + y - 3
        assert term.coefficient("x") == F(2)
        assert term.coefficient("y") == F(1)
        assert term.constant == F(-3)

    def test_zero_coefficients_dropped(self):
        term = x - x + y
        assert term.variables == ("y",)

    def test_equality_is_structural(self):
        assert 2 * x + 1 == x + x + 1
        assert hash(2 * x + 1) == hash(x + x + 1)

    def test_scale_and_neg(self):
        term = (x + 2 * y).scale(F(1, 2))
        assert term.coefficient("y") == F(1)
        assert (-term).coefficient("x") == F(-1, 2)

    def test_rsub(self):
        term = 5 - x
        assert term.constant == F(5)
        assert term.coefficient("x") == F(-1)

    def test_constant_product_ok(self):
        assert (x * LinearTerm.const(3)).coefficient("x") == F(3)
        assert (LinearTerm.const(3) * x).coefficient("x") == F(3)

    def test_nonlinear_product_rejected(self):
        with pytest.raises(NonLinearTermError):
            __ = x * y

    def test_evaluate(self):
        term = 2 * x - y + 1
        assert term.evaluate({"x": F(3), "y": F(2)}) == F(5)

    def test_substitute(self):
        term = 2 * x + y
        replaced = term.substitute({"x": y + 1})  # 2(y+1) + y = 3y + 2
        assert replaced.coefficient("y") == F(3)
        assert replaced.constant == F(2)

    def test_rename(self):
        term = x + 2 * y
        renamed = term.rename({"x": "a", "y": "b"})
        assert renamed.variables == ("a", "b")

    def test_rename_collision_rejected(self):
        with pytest.raises(NonLinearTermError):
            (x + y).rename({"x": "y"})

    def test_vector_roundtrip(self):
        term = 2 * x - 3 * y + 5
        coeffs, const = term.to_vector(["x", "y", "z"])
        assert coeffs == (F(2), F(-3), F(0))
        assert const == F(5)
        back = LinearTerm.from_vector(coeffs, const, ["x", "y", "z"])
        assert back == term

    def test_vector_missing_variable_rejected(self):
        with pytest.raises(NonLinearTermError):
            (x + y).to_vector(["x"])

    def test_term_sum(self):
        assert term_sum([x, y, LinearTerm.const(1)]) == x + y + 1
        assert term_sum([]) == LinearTerm.const(0)

    @given(
        a=st.integers(-10, 10),
        b=st.integers(-10, 10),
        px=st.fractions(min_value=-5, max_value=5, max_denominator=6),
        py=st.fractions(min_value=-5, max_value=5, max_denominator=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_linearity_property(self, a, b, px, py):
        term = a * x + b * y
        assert term.evaluate({"x": px, "y": py}) == a * px + b * py


class TestOps:
    def test_complements(self):
        assert Op.LT.complement() is Op.GE
        assert Op.GE.complement() is Op.LT
        assert Op.LE.complement() is Op.GT
        assert Op.GT.complement() is Op.LE
        assert Op.EQ.complement() is None

    def test_flipped(self):
        assert Op.LT.flipped() is Op.GT
        assert Op.EQ.flipped() is Op.EQ

    def test_holds(self):
        assert Op.LT.holds(F(-1)) and not Op.LT.holds(F(0))
        assert Op.LE.holds(F(0))
        assert Op.EQ.holds(F(0)) and not Op.EQ.holds(F(1))
        assert Op.GT.holds(F(1)) and not Op.GT.holds(F(0))


class TestAtoms:
    def test_compare_moves_rhs(self):
        atom = Atom.compare(x, Op.LE, y + 1)
        assert atom.holds_at({"x": F(1), "y": F(0)})
        assert not atom.holds_at({"x": F(2), "y": F(0)})

    def test_negated_atoms_eq_splits(self):
        atom = Atom.compare(x, Op.EQ, LinearTerm.const(0))
        negs = atom.negated_atoms()
        assert len(negs) == 2
        assert {a.op for a in negs} == {Op.LT, Op.GT}

    def test_negation_is_complement_pointwise(self):
        for op in Op:
            atom = Atom.compare(x, op, LinearTerm.const(0))
            for value in (F(-1), F(0), F(1)):
                direct = atom.holds_at({"x": value})
                via_negation = any(
                    n.holds_at({"x": value}) for n in atom.negated_atoms()
                )
                assert direct != via_negation

    def test_to_linear_constraint(self):
        atom = Atom.compare(2 * x + y, Op.LE, LinearTerm.const(4))
        constraint = atom.to_linear_constraint(["x", "y"])
        assert constraint.satisfied_by((F(1), F(2)))
        assert not constraint.satisfied_by((F(2), F(2)))

    def test_constraint_roundtrip(self):
        atom = Atom.compare(x - 3 * y, Op.LT, LinearTerm.const(7))
        constraint = atom.to_linear_constraint(["x", "y"])
        back = atom_from_constraint(constraint, ["x", "y"])
        for point in [{"x": F(0), "y": F(0)}, {"x": F(8), "y": F(0)},
                      {"x": F(7), "y": F(0)}]:
            assert atom.holds_at(point) == back.holds_at(point)

    def test_hyperplane_extraction(self):
        atom = Atom.compare(2 * x, Op.LT, 4 + LinearTerm.const(0))
        plane = atom.hyperplane(["x"])
        assert plane is not None
        assert plane.contains((F(2),))

    def test_trivial_atom(self):
        atom = Atom.compare(LinearTerm.const(1), Op.LT, LinearTerm.const(2))
        assert atom.is_trivial()
        assert atom.trivial_truth()
        assert atom.hyperplane(["x"]) is None

    def test_trivial_truth_requires_trivial(self):
        with pytest.raises(ValueError):
            Atom.compare(x, Op.LT, LinearTerm.const(0)).trivial_truth()
