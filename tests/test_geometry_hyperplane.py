"""Tests for canonical hyperplanes and halfspaces."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.hyperplane import Halfspace, Hyperplane, Side

F = Fraction


class TestCanonicalisation:
    def test_scaling_collapses(self):
        a = Hyperplane.make([2, 4], 6)
        b = Hyperplane.make([1, 2], 3)
        c = Hyperplane.make([F(1, 2), 1], F(3, 2))
        assert a == b == c

    def test_sign_normalised(self):
        a = Hyperplane.make([-1, -2], -3)
        b = Hyperplane.make([1, 2], 3)
        assert a == b

    def test_distinct_offsets_distinct(self):
        assert Hyperplane.make([1, 0], 0) != Hyperplane.make([1, 0], 1)

    def test_zero_normal_rejected(self):
        with pytest.raises(GeometryError):
            Hyperplane.make([0, 0], 1)

    def test_canonical_form_is_primitive_integer(self):
        h = Hyperplane.make([F(2, 3), F(4, 3)], F(2))
        assert all(coeff.denominator == 1 for coeff in h.normal)
        assert h.offset.denominator == 1
        assert h.normal == (F(1), F(2))

    @given(
        coeffs=st.tuples(st.integers(-20, 20), st.integers(-20, 20)).filter(
            lambda t: t != (0, 0)
        ),
        offset=st.integers(-20, 20),
        scale_num=st.integers(1, 7),
        scale_den=st.integers(1, 7),
    )
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance_property(self, coeffs, offset, scale_num, scale_den):
        factor = F(scale_num, scale_den)
        original = Hyperplane.make(list(coeffs), offset)
        scaled = Hyperplane.make(
            [factor * c for c in map(F, coeffs)], factor * offset
        )
        assert original == scaled
        assert hash(original) == hash(scaled)


class TestSides:
    def test_above_on_below(self):
        h = Hyperplane.make([0, 1], 1)  # y = 1
        assert h.side_of((F(0), F(2))) is Side.ABOVE
        assert h.side_of((F(5), F(1))) is Side.ON
        assert h.side_of((F(0), F(0))) is Side.BELOW

    def test_contains_and_evaluate(self):
        h = Hyperplane.make([1, -1], 0)  # x = y
        assert h.contains((F(3), F(3)))
        assert h.evaluate((F(4), F(1))) == F(3)


class TestHalfspace:
    def test_open_halfspace(self):
        h = Hyperplane.make([1, 0], 0)
        hs = Halfspace(h, Side.ABOVE, closed=False)  # x > 0
        assert hs.contains((F(1), F(0)))
        assert not hs.contains((F(0), F(0)))
        assert not hs.contains((F(-1), F(0)))

    def test_closed_halfspace(self):
        h = Hyperplane.make([1, 0], 0)
        hs = Halfspace(h, Side.BELOW, closed=True)  # x <= 0
        assert hs.contains((F(0), F(5)))
        assert hs.contains((F(-1), F(0)))

    def test_complement_partitions_space(self):
        h = Hyperplane.make([1, 1], 1)
        hs = Halfspace(h, Side.ABOVE, closed=False)
        comp = hs.complement()
        for point in [(F(0), F(0)), (F(1), F(0)), (F(2), F(2))]:
            assert hs.contains(point) != comp.contains(point)

    def test_side_on_rejected(self):
        with pytest.raises(GeometryError):
            Halfspace(Hyperplane.make([1], 0), Side.ON, closed=True)

    def test_str_ops(self):
        h = Hyperplane.make([1, 0], 2)
        assert ">" in str(Halfspace(h, Side.ABOVE, closed=False))
        assert "<=" in str(Halfspace(h, Side.BELOW, closed=True))
