"""Tests for quantifier elimination, relations and databases."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormulaError
from repro.constraints.database import ConstraintDatabase, default_schema
from repro.constraints.parser import parse_formula
from repro.constraints.qelim import (
    eliminate_quantifiers,
    formulas_equivalent,
    is_satisfiable_qf,
    is_valid_qf,
)
from repro.constraints.relation import ConstraintRelation

F = Fraction


def rel(variables, text):
    return ConstraintRelation.make(tuple(variables), parse_formula(text))


class TestQuantifierElimination:
    def test_exists_projection(self):
        f = parse_formula("EXISTS y. x < y & y < 1")
        qf = eliminate_quantifiers(f)
        assert qf.is_quantifier_free()
        assert qf.evaluate({"x": F(0)})
        assert not qf.evaluate({"x": F(1)})
        assert not qf.evaluate({"x": F(2)})

    def test_forall(self):
        f = parse_formula("FORALL y. y > x -> y > 0")
        qf = eliminate_quantifiers(f)
        assert qf.is_quantifier_free()
        assert qf.evaluate({"x": F(1)})
        assert qf.evaluate({"x": F(0)})
        assert not qf.evaluate({"x": F(-1)})

    def test_nested_quantifiers(self):
        # "x is between two points that straddle 0" — always true.
        f = parse_formula("EXISTS a. EXISTS b. a < x & x < b")
        qf = eliminate_quantifiers(f)
        assert is_valid_qf(qf)

    def test_equality_substitution_path(self):
        f = parse_formula("EXISTS y. y = x + 1 & y <= 3")
        qf = eliminate_quantifiers(f)
        assert qf.evaluate({"x": F(2)})
        assert not qf.evaluate({"x": F(3)})

    def test_unsatisfiable_collapses(self):
        f = parse_formula("EXISTS x. x < 0 & x > 0")
        qf = eliminate_quantifiers(f)
        assert not is_satisfiable_qf(qf)

    def test_sentence_evaluates_to_truth(self):
        assert is_valid_qf(eliminate_quantifiers(
            parse_formula("EXISTS x. x > 1000")
        ))
        assert not is_satisfiable_qf(eliminate_quantifiers(
            parse_formula("FORALL x. x > 0")
        ))

    def test_strictness_preserved(self):
        f = parse_formula("EXISTS y. x < y & y < z")
        qf = eliminate_quantifiers(f)
        assert qf.evaluate({"x": F(0), "z": F(1)})
        assert not qf.evaluate({"x": F(0), "z": F(0)})  # needs x < z strictly

    def test_formulas_equivalent_across_representations(self):
        # The paper's §2 example: two representations of (0, 10).
        phi1 = parse_formula("0 < x & x < 10")
        phi2 = parse_formula("(0 < x & x < 6) | (6 < x & x < 10) | x = 6")
        assert formulas_equivalent(phi1, phi2)
        phi3 = parse_formula("0 < x & x < 9")
        assert not formulas_equivalent(phi1, phi3)

    @given(
        bound=st.integers(-5, 5),
        samples=st.lists(st.integers(-8, 8), min_size=1, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_projection_agrees_with_semantics(self, bound, samples):
        # ∃y (x <= y <= bound) ≡ x <= bound.
        f = parse_formula(f"EXISTS y. x <= y & y <= {bound}".replace("-", "0 -"))
        qf = eliminate_quantifiers(f)
        for sample in samples:
            assert qf.evaluate({"x": F(sample)}) == (sample <= bound)


class TestRelations:
    def test_membership(self):
        r = rel(["x", "y"], "x > 0 & y > 0 & x + y < 1")
        assert r.contains((F(1, 4), F(1, 4)))
        assert not r.contains((F(1), F(1)))

    def test_arity_check(self):
        r = rel(["x"], "x > 0")
        with pytest.raises(FormulaError):
            r.contains((F(1), F(2)))

    def test_schema_validation(self):
        with pytest.raises(FormulaError):
            ConstraintRelation.make(("x",), parse_formula("y > 0"))
        with pytest.raises(FormulaError):
            ConstraintRelation.make(("x", "x"), parse_formula("x > 0"))

    def test_quantified_formula_auto_eliminated(self):
        r = ConstraintRelation.make(
            ("x",), parse_formula("EXISTS y. x < y & y < 1")
        )
        assert r.formula.is_quantifier_free()
        assert r.contains((F(0),))

    def test_algebra(self):
        a = rel(["x"], "x > 0")
        b = rel(["x"], "x < 1")
        assert a.intersect(b).contains((F(1, 2),))
        assert not a.intersect(b).contains((F(2),))
        assert a.union(b).is_universal()
        assert a.complement().contains((F(-1),))
        assert a.difference(b).contains((F(2),))
        assert not a.difference(b).contains((F(1, 2),))

    def test_projection(self):
        r = rel(["x", "y"], "x = 2*y & 0 < y & y < 1")
        projected = r.project_out("y")
        assert projected.variables == ("x",)
        assert projected.contains((F(1),))
        assert not projected.contains((F(3),))

    def test_rename_overlapping_schemas(self):
        r = rel(["x", "y"], "x < y")
        swapped = r.rename_to(("y", "x"))
        assert swapped.contains((F(0), F(1)))  # first column < second
        assert not swapped.contains((F(1), F(0)))

    def test_equivalence(self):
        a = rel(["x"], "0 < x & x < 10")
        b = rel(["u"], "(0 < u & u < 6) | (6 < u & u < 10) | u = 6")
        assert a.equivalent(b)

    def test_emptiness_and_universality(self):
        assert rel(["x"], "x < 0 & x > 0").is_empty()
        assert rel(["x"], "x < 0 | x >= 0").is_universal()
        assert not rel(["x"], "x > 0").is_empty()

    def test_simplify_drops_empty_disjuncts(self):
        r = rel(["x"], "(x < 0 & x > 0) | x = 5")
        simplified = r.simplify()
        assert len(simplified.disjuncts()) == 1
        assert simplified.contains((F(5),))

    def test_polyhedra_and_samples(self):
        r = rel(["x", "y"], "(x > 0 & y > 0) | (x < 0 & y < 0)")
        polys = r.polyhedra()
        assert len(polys) == 2
        samples = r.sample_points()
        assert len(samples) == 2
        for point in samples:
            assert r.contains(point)

    def test_representation_size_grows(self):
        small = rel(["x"], "x > 0")
        big = rel(["x"], "x > 0 & x < 1 & 2*x < 1")
        assert big.representation_size() > small.representation_size()

    @given(
        c1=st.integers(-3, 3),
        c2=st.integers(-3, 3),
        points=st.lists(
            st.fractions(min_value=-5, max_value=5, max_denominator=4),
            min_size=1, max_size=5,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_de_morgan_property(self, c1, c2, points):
        a = rel(["x"], f"x <= {c1}".replace("-", "0 -"))
        b = rel(["x"], f"x >= {c2}".replace("-", "0 -"))
        lhs = a.intersect(b).complement()
        rhs = a.complement().union(b.complement())
        for p in points:
            assert lhs.contains((p,)) == rhs.contains((p,))


class TestDatabase:
    def test_single(self):
        db = ConstraintDatabase.from_formula(
            parse_formula("x0 > 0 & x1 > 0"), arity=2
        )
        assert db.names() == ("S",)
        assert db.spatial.contains((F(1), F(1)))
        assert "S" in db
        assert db.size() > 0

    def test_multiple_relations(self):
        db = ConstraintDatabase.make(
            {
                "A": rel(["x"], "x > 0"),
                "B": rel(["x"], "x < 0"),
            }
        )
        assert set(db.names()) == {"A", "B"}
        with pytest.raises(FormulaError):
            __ = db.spatial
        with pytest.raises(FormulaError):
            db.relation("C")

    def test_empty_database_rejected(self):
        with pytest.raises(FormulaError):
            ConstraintDatabase.make({})

    def test_default_schema(self):
        assert default_schema(3) == ("x0", "x1", "x2")
