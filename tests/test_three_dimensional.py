"""Three-dimensional exercises across the whole stack.

The engine is dimension-generic; these tests pin that down: exact face
censuses for small 3-D arrangements, the d=3 Euler relation
V − E + F − C = −1, NC¹ decomposition of a tetrahedron, connectivity of
3-D bodies, and RegFO evaluation with three element variables per
point.
"""

from fractions import Fraction

import pytest

from repro.arrangement.builder import build_arrangement
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.geometry.hyperplane import Hyperplane
from repro.engine import QueryEngine
from repro.logic.parser import parse_query
from repro.queries.connectivity import is_connected
from repro.regions.nc1 import decompose_disjunct

F = Fraction


def tetrahedron_relation() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y", "z"),
        parse_formula("x >= 0 & y >= 0 & z >= 0 & x + y + z <= 1"),
    )


class TestThreeDimensionalArrangements:
    def test_coordinate_planes_census(self):
        planes = [
            Hyperplane.make([1, 0, 0], 0),
            Hyperplane.make([0, 1, 0], 0),
            Hyperplane.make([0, 0, 1], 0),
        ]
        arrangement = build_arrangement(hyperplanes=planes, dimension=3)
        census = arrangement.face_count_by_dimension()
        # Octants 8, quarter-planes 12, half-lines 6, origin 1.
        assert census == {3: 8, 2: 12, 1: 6, 0: 1}

    def test_tetrahedron_census(self):
        arrangement = build_arrangement(tetrahedron_relation())
        census = arrangement.face_count_by_dimension()
        # 4 generic planes in R^3.
        assert census[0] == 4          # C(4,3) vertices
        assert census[1] == 18         # 6 lines cut into 3 pieces each
        assert census[2] == 28         # 4 planes cut into 7 cells each
        assert census[3] == 15         # 1 + 4 + C(4,2) + C(4,3)

    def test_euler_relation_d3(self):
        """V − E + F − C = −1 for plane arrangements of ℝ³ (χ pattern)."""
        for relation in (tetrahedron_relation(),):
            census = build_arrangement(relation).face_count_by_dimension()
            alternating = (
                census.get(0, 0) - census.get(1, 0)
                + census.get(2, 0) - census.get(3, 0)
            )
            assert alternating == -1

    def test_membership_classification(self):
        arrangement = build_arrangement(tetrahedron_relation())
        inside = arrangement.locate((F(1, 8), F(1, 8), F(1, 8)))
        assert inside.dimension == 3
        assert inside.in_relation
        outside = arrangement.locate((F(2), F(2), F(2)))
        assert not outside.in_relation
        facet = arrangement.locate((F(1, 4), F(1, 4), F(0)))
        assert facet.dimension == 2
        assert facet.in_relation


class TestThreeDimensionalNC1:
    def test_tetrahedron_decomposition(self):
        [poly] = tetrahedron_relation().polyhedra()
        regions = decompose_disjunct(poly)
        census: dict[int, int] = {}
        for region in regions:
            census[region.dimension] = census.get(region.dimension, 0) + 1
        # 4 vertices; 6 edges (all boundary); 4 facets (outer; no three
        # vertices have a crossing segment) and the solid interior from
        # the fan of p_low with the 3 opposite vertices.
        assert census[0] == 4
        assert census[1] == 6
        assert census[3] == 1
        assert census[2] >= 4

    def test_all_regions_in_closure_and_cover_witness(self):
        [poly] = tetrahedron_relation().polyhedra()
        regions = decompose_disjunct(poly)
        closed = poly.closure()
        for region in regions:
            assert closed.contains(region.sample_point())
        witness = poly.relative_interior_point()
        assert any(r.contains(witness) for r in regions)


class TestThreeDimensionalQueries:
    def db(self, text: str) -> ConstraintDatabase:
        return ConstraintDatabase.from_formula(parse_formula(text), 3)

    def test_regfo_projection(self):
        database = self.db("x0 >= 0 & x1 >= 0 & x2 >= 0 & "
                           "x0 + x1 + x2 <= 1")
        q = parse_query(
            "forall x, y, z. S(x, y, z) -> x + y + z <= 1"
        )
        assert QueryEngine(database).truth(q)

    @pytest.mark.parametrize("touching,expected", [
        (True, True),
        (False, False),
    ])
    def test_two_boxes_connectivity_ground(self, touching, expected):
        offset = 1 if touching else 2
        database = self.db(
            "(0 <= x0 & x0 <= 1 & 0 <= x1 & x1 <= 1 & 0 <= x2 & x2 <= 1)"
            f" | ({offset} <= x0 & x0 <= {offset + 1} & 0 <= x1 & "
            "x1 <= 1 & 0 <= x2 & x2 <= 1)"
        )
        assert is_connected(database, "ground") is expected

    def test_in_region_three_coordinates(self):
        database = self.db("x0 >= 0 & x1 >= 0 & x2 >= 0 & "
                           "x0 + x1 + x2 <= 1")
        q = parse_query(
            "exists x, y, z, R. (x, y, z) in R & sub(R, S) & "
            "x = 0 & y = 0 & z = 0"
        )
        assert QueryEngine(database).truth(q)
