"""Tests for the query library: connectivity, river, topology."""

from fractions import Fraction

import pytest

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.queries.connectivity import (
    connectivity_ground_truth,
    connectivity_query_lfp,
    connectivity_query_tc,
    is_connected,
)
from repro.queries.river import (
    RiverMap,
    build_river_database,
    river_has_chemical_sequence,
)
from repro.queries.topology import (
    contains_origin_query,
    has_interior_query,
    is_empty_query,
    relation_bounded,
    run_boolean,
)
from repro.twosorted.structure import RegionExtension
from repro.workloads.generators import (
    chain_of_boxes,
    interval_chain,
    river_scenario,
    stripes,
)
from repro.errors import WorkloadError

F = Fraction


def db(text: str, arity: int) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


class TestConnectivityLibrary:
    @pytest.mark.parametrize("segments,gap,expected", [
        (1, False, True),
        (3, False, True),   # touching chain
        (2, True, False),   # separated
        (4, True, False),
    ])
    def test_interval_chains(self, segments, gap, expected):
        database = interval_chain(segments, gap=gap)
        assert is_connected(database, "lfp") is expected
        assert is_connected(database, "ground") is expected

    def test_lfp_and_ground_agree_2d(self):
        for database in (chain_of_boxes(2), stripes(2)):
            assert is_connected(database, "lfp") == \
                is_connected(database, "ground")

    def test_tc_variant_1d(self):
        assert is_connected(interval_chain(2), "tc")
        assert not is_connected(interval_chain(2, gap=True), "tc")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            is_connected(interval_chain(1), "magic")

    def test_ground_truth_on_nc1(self):
        ext = RegionExtension.build(interval_chain(2), "nc1")
        assert connectivity_ground_truth(ext)

    def test_query_objects_have_no_free_vars(self):
        for arity in (1, 2):
            assert not connectivity_query_lfp(arity).free_element_vars()
            assert not connectivity_query_tc(arity).free_region_vars()


class TestRiverScenario:
    def test_polluted_river_detected(self):
        database = river_scenario(6, polluted=True)
        assert river_has_chemical_sequence(database)

    def test_clean_river_not_detected(self):
        database = river_scenario(6, polluted=False)
        assert not river_has_chemical_sequence(database)

    def test_unreachable_pollution_not_detected(self):
        database = river_scenario(6, polluted=True, reachable=False)
        assert not river_has_chemical_sequence(database)

    def test_map_validation(self):
        with pytest.raises(WorkloadError):
            RiverMap(length=0)
        with pytest.raises(WorkloadError):
            RiverMap(length=5, chem1_zones=((F(3), F(2)),))

    def test_database_shape(self):
        database = build_river_database(
            RiverMap(length=4, chem1_zones=((F(1), F(2)),))
        )
        assert set(database.names()) == {"S", "Chem1", "Chem2"}
        assert database.relation("S").contains((F(2),))
        assert database.relation("Chem1").contains((F(3, 2),))
        assert not database.relation("Chem2").contains((F(3, 2),))


class TestTopology:
    def test_is_empty(self):
        assert run_boolean(is_empty_query(1), db("x0 < 0 & x0 > 0", 1))
        assert not run_boolean(is_empty_query(1), db("x0 > 0", 1))

    def test_contains_origin(self):
        assert run_boolean(contains_origin_query(2),
                           db("x0 >= 0 & x1 >= 0", 2))
        assert not run_boolean(contains_origin_query(2),
                               db("x0 > 0 & x1 > 0", 2))

    def test_has_interior(self):
        assert run_boolean(has_interior_query(1), db("0 < x0 & x0 < 1", 1))
        assert not run_boolean(has_interior_query(1), db("x0 = 0", 1))

    def test_relation_bounded(self):
        assert relation_bounded(db("0 <= x0 & x0 <= 1", 1))
        assert not relation_bounded(db("x0 >= 0", 1))
        assert relation_bounded(
            db("x0 >= 0 & x1 >= 0 & x0 + x1 <= 1", 2)
        )
        assert not relation_bounded(db("x0 >= x1", 2))
