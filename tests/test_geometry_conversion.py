"""Tests for H-rep → V-rep conversion (Minkowski–Weyl)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.conversion import extreme_rays, to_vrep
from repro.geometry.fourier_motzkin import LinearConstraint
from repro.geometry.polyhedron import Polyhedron

F = Fraction


def c(coeffs, rel, rhs):
    return LinearConstraint.make(coeffs, rel, rhs)


class TestExtremeRays:
    def test_bounded_has_no_rays(self):
        square = Polyhedron.make(2, [
            c([1, 0], "<=", 1), c([-1, 0], "<=", 0),
            c([0, 1], "<=", 1), c([0, -1], "<=", 0),
        ])
        assert extreme_rays(square) == []

    def test_quadrant(self):
        quadrant = Polyhedron.make(2, [
            c([-1, 0], "<=", 0), c([0, -1], "<=", 0),
        ])
        rays = set(extreme_rays(quadrant))
        assert rays == {(F(1), F(0)), (F(0), F(1))}

    def test_halfplane_contains_line(self):
        half = Polyhedron.make(2, [c([0, 1], "<=", 0)])  # y <= 0
        rays = set(extreme_rays(half))
        # The recession cone is a halfplane: extreme directions are the
        # boundary line's both orientations plus... boundary rays only.
        assert (F(1), F(0)) in rays
        assert (F(-1), F(0)) in rays

    def test_one_dimensional(self):
        ray = Polyhedron.make(1, [c([-1], "<=", 0)])  # x >= 0
        assert extreme_rays(ray) == [(F(1),)]
        segment = Polyhedron.make(
            1, [c([1], "<=", 1), c([-1], "<=", 0)]
        )
        assert extreme_rays(segment) == []

    def test_wedge(self):
        wedge = Polyhedron.make(2, [
            c([0, -1], "<=", 0),      # y >= 0
            c([-1, 1], "<=", 0),      # y <= x
        ])
        rays = set(extreme_rays(wedge))
        assert rays == {(F(1), F(0)), (F(1), F(1))}


class TestToVrep:
    def test_square_roundtrip(self):
        square = Polyhedron.make(2, [
            c([1, 0], "<=", 1), c([-1, 0], "<=", 0),
            c([0, 1], "<=", 1), c([0, -1], "<=", 0),
        ])
        body = to_vrep(square)
        assert len(body.points) == 4
        assert not body.rays
        for probe in [(F(1, 2), F(1, 2)), (F(0), F(1)), (F(1), F(0))]:
            assert body.closure_contains(probe)
        assert not body.closure_contains((F(2), F(0)))

    def test_wedge_roundtrip(self):
        wedge = Polyhedron.make(2, [
            c([0, -1], "<=", 0), c([-1, 1], "<=", 0),
        ])
        body = to_vrep(wedge)
        assert body.points == ((F(0), F(0)),)
        assert len(body.rays) == 2
        assert body.closure_contains((F(10), F(3)))
        assert not body.closure_contains((F(-1), F(0)))

    def test_strip_without_vertices(self):
        strip = Polyhedron.make(2, [
            c([0, 1], "<=", 1), c([0, -1], "<=", 0),
        ])  # 0 <= y <= 1, x free
        body = to_vrep(strip)
        assert body.closure_contains((F(100), F(1, 2)))
        assert body.closure_contains((F(-100), F(1)))
        assert not body.closure_contains((F(0), F(2)))

    def test_empty_rejected(self):
        empty = Polyhedron.make(1, [c([1], "<", 0), c([-1], "<", 0)])
        with pytest.raises(GeometryError):
            to_vrep(empty)

    @given(
        rows=st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                      st.integers(-3, 3)).filter(
                lambda t: (t[0], t[1]) != (0, 0)
            ),
            min_size=1,
            max_size=4,
        ),
        probe=st.tuples(
            st.fractions(min_value=-4, max_value=4, max_denominator=4),
            st.fractions(min_value=-4, max_value=4, max_denominator=4),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_membership_agreement_property(self, rows, probe):
        """closure(P) membership must agree between H-rep and V-rep."""
        poly = Polyhedron.make(
            2, [c([a, b], "<=", rhs) for a, b, rhs in rows]
        )
        if poly.is_empty():
            return
        body = to_vrep(poly)
        assert body.closure_contains(probe) == poly.closure().contains(
            probe
        )
