"""Cross-executor equivalence: compiled IR vs interpreted semi-naive.

The compiled executor (:mod:`repro.datalog.compile` over
:mod:`repro.ir`) must be *byte-identical* to the interpreted engine —
not just equivalent relations but structurally identical formulas,
equal stage counts and per-stage accumulated sizes, equal divergence
behaviour, and equal ``datalog.*`` telemetry deltas.  Anything weaker
would let the memoised kernels drift from the oracle's simplification
order unnoticed.

Covers seeded program shapes (recursion, mutual recursion across one
stratum, stratified negation, multi-variable joins, divergence at the
stage cap) plus a hypothesis fuzz over random interval databases and
step bounds.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.datalog import evaluate_program
from repro.datalog.compile import evaluate_program_compiled
from repro.datalog.parser import parse_program
from repro.obs.journal import JOURNAL
from repro.obs.metrics import get_registry
from repro.workloads.generators import interval_chain

F = Fraction

#: Telemetry that must move identically under both executors.  The
#: compiled tier additionally increments ``datalog.compiled_runs``;
#: that counter is the *only* permitted difference.
SHARED_COUNTERS = (
    "datalog.runs",
    "datalog.seminaive_runs",
    "datalog.stages",
    "datalog.delta_disjuncts",
)


def db(text: str, arity: int = 1) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


def run_both(program, database, max_stages: int = 25):
    """Both executors plus their shared-counter deltas."""
    registry = get_registry()

    def snapshot():
        return {name: registry.get(name) for name in SHARED_COUNTERS}

    before = snapshot()
    interpreted = evaluate_program(
        program, database, max_stages=max_stages, executor="interpreted"
    )
    interpreted_delta = {
        name: value - before[name]
        for name, value in snapshot().items()
    }
    before = snapshot()
    compiled = evaluate_program(
        program, database, max_stages=max_stages, executor="compiled"
    )
    compiled_delta = {
        name: value - before[name]
        for name, value in snapshot().items()
    }
    return interpreted, compiled, interpreted_delta, compiled_delta


def assert_byte_identical(program, database, max_stages: int = 25):
    interpreted, compiled, interp_delta, comp_delta = run_both(
        program, database, max_stages
    )
    assert compiled.converged == interpreted.converged
    assert compiled.stages == interpreted.stages
    assert compiled.stage_sizes == interpreted.stage_sizes
    assert set(compiled.relations) == set(interpreted.relations)
    for predicate in compiled.relations:
        fast = compiled[predicate]
        slow = interpreted[predicate]
        assert fast.variables == slow.variables, predicate
        assert str(fast.formula) == str(slow.formula), predicate
    assert comp_delta == interp_delta, (comp_delta, interp_delta)
    return interpreted, compiled


REACH = parse_program(
    "Reach(x) :- S(x), x = 0.\n"
    "Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.\n"
)

MUTUAL = parse_program(
    "A(x) :- S(x), x = 0.\n"
    "A(y) :- B(x), S(y), y - x <= 1, x - y <= 1.\n"
    "B(x) :- A(x).\n"
)

STRATIFIED = parse_program(
    "Reach(x) :- S(x), x = 0.\n"
    "Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.\n"
    "Stranded(x) :- S(x), !Reach(x).\n"
)

TWO_VAR = parse_program(
    "T(x, y) :- E(x, y).\n"
    "T(x, z) :- T(x, y), E(y, z).\n"
)

SWAPPED = parse_program(
    "Q(x, y) :- B(x), B(y), x - y >= 1.\n"
    "Q(x, y) :- Q(y, x), B(x), x - y >= 1.\n"
)

SUCCESSOR = parse_program(
    "P(x) :- S(x), x = 0.\n"
    "P(y) :- P(x), S(y), y = x + 1.\n"
)


class TestSeededEquivalence:
    def test_reachability_chains(self):
        for k in (1, 2, 4):
            assert_byte_identical(
                REACH, interval_chain(k), max_stages=4 * k + 8
            )

    def test_reach_with_gap(self):
        database = db("(0 <= x0 & x0 <= 1) | (3 <= x0 & x0 <= 4)")
        interpreted, compiled = assert_byte_identical(REACH, database)
        assert compiled.converged
        assert compiled["Reach"].contains((F(1),))
        assert not compiled["Reach"].contains((F(3),))

    def test_mutual_recursion_one_stratum(self):
        assert_byte_identical(MUTUAL, interval_chain(2), max_stages=20)

    def test_stratified_negation(self):
        database = db("(0 <= x0 & x0 <= 1) | (3 <= x0 & x0 <= 4)")
        interpreted, compiled = assert_byte_identical(STRATIFIED, database)
        assert compiled["Stranded"].contains((F(7, 2),))
        assert not compiled["Stranded"].contains((F(1, 2),))

    def test_two_variable_transitive_closure(self):
        database = ConstraintDatabase.from_formula(
            parse_formula(
                "(0 <= x0 & x0 <= 1 & x1 = x0 + 2) | "
                "(2 <= x0 & x0 <= 3 & x1 = x0 + 2)"
            ),
            arity=2,
            name="E",
        )
        assert_byte_identical(TWO_VAR, database, max_stages=12)

    def test_swapped_head_recursion(self):
        database = ConstraintDatabase.make(
            {"B": db("0 <= x0 & x0 <= 3").relation("S")}
        )
        assert_byte_identical(SWAPPED, database, max_stages=12)

    def test_divergence_at_stage_cap(self):
        assert_byte_identical(SUCCESSOR, db("x0 >= 0"), max_stages=6)

    def test_compiled_runs_counter_moves_only_for_compiled(self):
        registry = get_registry()
        database = interval_chain(1)
        before = registry.get("datalog.compiled_runs")
        evaluate_program(REACH, database, executor="interpreted")
        assert registry.get("datalog.compiled_runs") == before
        evaluate_program(REACH, database, executor="compiled")
        assert registry.get("datalog.compiled_runs") == before + 1

    def test_journal_stage_events_identical_modulo_executor(self):
        database = interval_chain(2)
        events = {}
        for executor in ("interpreted", "compiled"):
            JOURNAL.start()
            try:
                evaluate_program(
                    REACH, database, max_stages=20, executor=executor
                )
            finally:
                recorded = JOURNAL.stop()
            stages = [
                {
                    key: value
                    for key, value in event.items()
                    if key in ("stage", "deltas", "strategy")
                }
                for event in recorded
                if event["type"] == "datalog.stage"
            ]
            tags = {
                event["executor"]
                for event in recorded
                if event["type"] == "datalog.stage"
            }
            assert tags == {executor}
            events[executor] = stages
        assert events["compiled"] == events["interpreted"]


@st.composite
def interval_databases(draw):
    """A 1-ary database of up to three disjoint rational intervals."""
    count = draw(st.integers(min_value=1, max_value=3))
    endpoints = draw(
        st.lists(
            st.integers(min_value=0, max_value=8),
            min_size=2 * count,
            max_size=2 * count,
            unique=True,
        )
    )
    endpoints.sort()
    pieces = []
    for index in range(count):
        low, high = endpoints[2 * index], endpoints[2 * index + 1]
        pieces.append(f"({low} <= x0 & x0 <= {high})")
    return db(" | ".join(pieces))


class TestFuzzEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(database=interval_databases(),
           step=st.integers(min_value=1, max_value=2))
    def test_reach_programs(self, database, step):
        program = parse_program(
            "Reach(x) :- S(x), x = 0.\n"
            f"Reach(y) :- Reach(x), S(y), y - x <= {step}, "
            f"x - y <= {step}.\n"
        )
        assert_byte_identical(program, database, max_stages=16)

    @settings(max_examples=8, deadline=None)
    @given(database=interval_databases())
    def test_stratified_programs(self, database):
        assert_byte_identical(STRATIFIED, database, max_stages=16)
