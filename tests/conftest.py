"""Shared test configuration.

Adds the ``--update-golden`` flag used by ``tests/test_golden_figures.py``
to rewrite the committed golden files from the current implementation
(``PYTHONPATH=src python -m pytest tests/test_golden_figures.py
--update-golden``).  Regular runs compare against the committed files
and fail on any drift.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current results "
        "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")
