"""Tests for H-representation polyhedra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.fourier_motzkin import LinearConstraint
from repro.geometry.polyhedron import Polyhedron

F = Fraction


def c(coeffs, rel, rhs):
    return LinearConstraint.make(coeffs, rel, rhs)


def unit_square():
    return Polyhedron.make(
        2,
        [
            c([1, 0], "<=", 1),
            c([-1, 0], "<=", 0),
            c([0, 1], "<=", 1),
            c([0, -1], "<=", 0),
        ],
    )


def open_triangle():
    # x > 0, y > 0, x + y < 1
    return Polyhedron.make(
        2, [c([-1, 0], "<", 0), c([0, -1], "<", 0), c([1, 1], "<", 1)]
    )


class TestBasics:
    def test_universe(self):
        u = Polyhedron.universe(3)
        assert not u.is_empty()
        assert u.affine_dimension() == 3
        assert not u.is_bounded()

    def test_contains(self):
        square = unit_square()
        assert square.contains((F(1, 2), F(1, 2)))
        assert square.contains((F(1), F(1)))
        assert not square.contains((F(2), F(0)))

    def test_open_membership(self):
        tri = open_triangle()
        assert tri.contains((F(1, 4), F(1, 4)))
        assert not tri.contains((F(0), F(0)))

    def test_empty(self):
        empty = Polyhedron.make(1, [c([1], "<", 0), c([-1], "<", 0)])
        assert empty.is_empty()
        assert empty.affine_dimension() == -1
        assert empty.relative_interior_point() is None

    def test_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            Polyhedron.make(2, [c([1], "<=", 0)])
        with pytest.raises(GeometryError):
            unit_square().contains((F(0),))

    def test_intersect(self):
        half = Polyhedron.make(2, [c([1, 0], "<=", F(1, 2))])
        clipped = unit_square().intersect(half)
        assert clipped.contains((F(1, 4), F(1, 2)))
        assert not clipped.contains((F(3, 4), F(1, 2)))


class TestAffineStructure:
    def test_square_full_dim(self):
        assert unit_square().affine_dimension() == 2

    def test_segment_is_one_dimensional(self):
        # x + y = 1, 0 <= x <= 1.
        segment = Polyhedron.make(
            2, [c([1, 1], "=", 1), c([1, 0], "<=", 1), c([-1, 0], "<=", 0)]
        )
        assert segment.affine_dimension() == 1

    def test_implicit_equality_detected(self):
        # x <= 0 and x >= 0 without an explicit equality.
        line = Polyhedron.make(2, [c([1, 0], "<=", 0), c([-1, 0], "<=", 0)])
        eqs = line.implicit_equalities()
        assert len(eqs) >= 1
        assert line.affine_dimension() == 1

    def test_point_is_zero_dimensional(self):
        point = Polyhedron.make(
            2, [c([1, 0], "=", 3), c([0, 1], "=", 4)]
        )
        assert point.affine_dimension() == 0
        assert point.relative_interior_point() == (F(3), F(4))

    def test_relative_interior_point_inside(self):
        square = unit_square()
        p = square.relative_interior_point()
        assert p is not None
        assert all(F(0) < coord < F(1) for coord in p)

    def test_relative_interior_of_face(self):
        # The edge x = 1, 0 <= y <= 1 of the square.
        edge = unit_square().with_constraints([c([1, 0], "=", 1)])
        p = edge.relative_interior_point()
        assert p is not None
        assert p[0] == F(1)
        assert F(0) < p[1] < F(1)


class TestBoundedness:
    def test_square_bounded(self):
        assert unit_square().is_bounded()

    def test_halfplane_unbounded(self):
        half = Polyhedron.make(2, [c([1, 0], "<=", 0)])
        assert not half.is_bounded()

    def test_empty_is_bounded(self):
        empty = Polyhedron.make(1, [c([1], "<", 0), c([-1], "<", 0)])
        assert empty.is_bounded()

    def test_extent(self):
        low, high = unit_square().extent([F(1), F(0)])
        assert (low, high) == (F(0), F(1))

    def test_extent_unbounded_direction(self):
        half = Polyhedron.make(2, [c([1, 0], "<=", 3)])
        low, high = half.extent([F(1), F(0)])
        assert low is None
        assert high == F(3)

    def test_extent_of_empty_rejected(self):
        empty = Polyhedron.make(1, [c([1], "<", 0), c([-1], "<", 0)])
        with pytest.raises(GeometryError):
            empty.extent([F(1)])


class TestVertices:
    def test_square_vertices(self):
        vertices = unit_square().vertices()
        assert set(vertices) == {
            (F(0), F(0)),
            (F(0), F(1)),
            (F(1), F(0)),
            (F(1), F(1)),
        }

    def test_open_triangle_vertices_are_closure_vertices(self):
        vertices = open_triangle().vertices()
        assert set(vertices) == {(F(0), F(0)), (F(0), F(1)), (F(1), F(0))}

    def test_unbounded_wedge_vertex(self):
        wedge = Polyhedron.make(
            2, [c([0, -1], "<=", 0), c([-1, 1], "<=", 0)]
        )  # y >= 0, y <= x
        assert wedge.vertices() == [(F(0), F(0))]

    def test_redundant_constraint_adds_no_vertex(self):
        square = unit_square().with_constraints([c([1, 1], "<=", 5)])
        assert len(square.vertices()) == 4


class TestSegments:
    def test_segment_meets(self):
        square = unit_square()
        assert square.meets_segment((F(-1), F(1, 2)), (F(2), F(1, 2)))
        assert not square.meets_segment((F(-1), F(2)), (F(2), F(2)))

    def test_open_segment_endpoint_touch(self):
        square = unit_square()
        # Segment from outside that only touches the corner at endpoint.
        assert square.meets_segment((F(1), F(1)), (F(2), F(2)))
        assert not square.meets_segment(
            (F(1), F(1)), (F(2), F(2)), include_endpoints=False
        )

    def test_interior_via_relative_interior(self):
        square = unit_square()
        interior = square.relative_interior()
        # Boundary point is in the square but not the interior.
        assert square.contains((F(0), F(1, 2)))
        assert not interior.contains((F(0), F(1, 2)))
        assert interior.contains((F(1, 2), F(1, 2)))


class TestRecession:
    def test_ray_in_closure(self):
        wedge = Polyhedron.make(
            2, [c([0, -1], "<=", 0), c([-1, 1], "<=", 0)]
        )
        assert wedge.recession_ray_contains((F(0), F(0)), (F(1), F(0)))
        assert wedge.recession_ray_contains((F(0), F(0)), (F(1), F(1)))
        assert not wedge.recession_ray_contains((F(0), F(0)), (F(0), F(1)))

    def test_ray_from_outside_rejected(self):
        wedge = Polyhedron.make(2, [c([0, -1], "<=", 0), c([-1, 1], "<=", 0)])
        assert not wedge.recession_ray_contains((F(-5), F(0)), (F(1), F(0)))


@st.composite
def random_polyhedra(draw):
    n_rows = draw(st.integers(1, 5))
    rows = []
    for __ in range(n_rows):
        coeffs = [draw(st.integers(-3, 3)) for __ in range(2)]
        rel = draw(st.sampled_from(["<=", "<", "="]))
        rhs = draw(st.integers(-4, 4))
        rows.append(c(coeffs, rel, rhs))
    return Polyhedron.make(2, rows)


class TestPolyhedronProperties:
    @given(poly=random_polyhedra())
    @settings(max_examples=50, deadline=None)
    def test_feasible_point_is_member(self, poly):
        point = poly.feasible_point()
        if point is not None:
            assert poly.contains(point)

    @given(poly=random_polyhedra())
    @settings(max_examples=50, deadline=None)
    def test_relative_interior_point_is_member(self, poly):
        point = poly.relative_interior_point()
        if point is not None:
            assert poly.contains(point)

    @given(poly=random_polyhedra())
    @settings(max_examples=40, deadline=None)
    def test_vertices_lie_in_closure(self, poly):
        closed = poly.closure()
        for vertex in poly.vertices():
            assert closed.contains(vertex)

    @given(poly=random_polyhedra())
    @settings(max_examples=40, deadline=None)
    def test_affine_dimension_bounds(self, poly):
        dim = poly.affine_dimension()
        assert -1 <= dim <= 2
        assert (dim == -1) == poly.is_empty()
