"""EngineConfig: the one documented resolution order for every knob.

``EngineConfig.resolve`` pins **explicit argument > environment >
default** once, at construction; a plain ``EngineConfig(...)`` keeps
``None`` fields unresolved (environment consulted at use time), which
is the contract the ``QueryEngine`` legacy-kwarg shim relies on.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import ConstraintDatabase, QueryEngine, parse_formula
from repro.config import (
    ENV_CACHE_BUDGET,
    ENV_CACHE_DIR,
    ENV_JOBS,
    ENV_JOURNAL,
    ENV_LP_MODE,
    DEFAULT_CACHE_CAPACITY,
    EngineConfig,
)


@pytest.fixture
def clean_env(monkeypatch):
    for name in (ENV_LP_MODE, ENV_JOBS, ENV_CACHE_DIR,
                 ENV_CACHE_BUDGET, ENV_JOURNAL):
        monkeypatch.delenv(name, raising=False)
    return monkeypatch


def test_resolve_defaults(clean_env):
    config = EngineConfig.resolve()
    assert config.lp_mode == "filtered"
    assert config.jobs == 1
    assert config.cache_dir is None
    assert config.cache_budget is None
    assert config.journal is None
    assert config.cache_capacity == DEFAULT_CACHE_CAPACITY


def test_resolve_reads_environment(clean_env, tmp_path):
    clean_env.setenv(ENV_LP_MODE, "exact")
    clean_env.setenv(ENV_JOBS, "3")
    clean_env.setenv(ENV_CACHE_DIR, str(tmp_path))
    clean_env.setenv(ENV_CACHE_BUDGET, "4096")
    clean_env.setenv(ENV_JOURNAL, "events.jsonl")
    config = EngineConfig.resolve()
    assert config.lp_mode == "exact"
    assert config.jobs == 3
    assert config.cache_dir == str(tmp_path)
    assert config.cache_budget == 4096
    assert config.journal == "events.jsonl"


def test_explicit_argument_beats_environment(clean_env, tmp_path):
    clean_env.setenv(ENV_LP_MODE, "exact")
    clean_env.setenv(ENV_JOBS, "7")
    config = EngineConfig.resolve(lp_mode="filtered", jobs=2)
    assert config.lp_mode == "filtered"
    assert config.jobs == 2


def test_resolve_pins_once(clean_env):
    """A resolved config never re-reads the environment."""
    config = EngineConfig.resolve()
    clean_env.setenv(ENV_LP_MODE, "exact")
    assert config.lp_mode == "filtered"


def test_frozen_and_with_overrides(clean_env):
    config = EngineConfig.resolve()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.jobs = 4  # type: ignore[misc]
    changed = config.with_overrides(jobs=4)
    assert changed.jobs == 4 and config.jobs == 1


def test_unknown_field_rejected(clean_env):
    with pytest.raises(TypeError, match="unknown EngineConfig field"):
        EngineConfig.resolve(worker_count=4)


def test_validation_matches_engine_contract(clean_env):
    with pytest.raises(ValueError, match="lp_mode must be one of"):
        EngineConfig(lp_mode="approximate")
    with pytest.raises(ValueError, match="jobs must be >= 1"):
        EngineConfig(jobs=0)
    with pytest.raises(ValueError, match="cache_budget must be positive"):
        EngineConfig(cache_budget=-1)
    with pytest.raises(ValueError, match="cache_capacity must be >= 1"):
        EngineConfig(cache_capacity=0)


def _interval_db() -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(
        parse_formula("0 < x0 & x0 < 1"), arity=1
    )


def test_engine_accepts_config(clean_env):
    config = EngineConfig.resolve(jobs=2, lp_mode="exact")
    engine = QueryEngine(_interval_db(), config=config)
    assert engine.config is config
    assert engine.jobs == 2
    assert engine.lp_mode == "exact"
    assert not engine.evaluate("S(x0)").is_empty()


def test_engine_rejects_config_plus_legacy_kwargs(clean_env):
    with pytest.raises(ValueError, match="config"):
        QueryEngine(
            _interval_db(), config=EngineConfig.resolve(), jobs=2
        )


def test_legacy_kwargs_warn_but_work(clean_env):
    with pytest.deprecated_call():
        engine = QueryEngine(_interval_db(), jobs=2)
    assert engine.jobs == 2
    # The shim keeps env-at-use-time semantics for unset knobs.
    assert engine.config.lp_mode is None


def test_store_pins_explicit_budget(clean_env, tmp_path):
    config = EngineConfig.resolve(
        cache_dir=str(tmp_path / "store"), cache_budget=1 << 20
    )
    store = config.store()
    assert store is not None
    assert store.size_budget == 1 << 20


def test_make_cache_honours_capacity(clean_env):
    config = EngineConfig.resolve(cache_capacity=3)
    cache = config.make_cache()
    assert cache.capacity == 3


def test_describe_is_json_ready(clean_env, tmp_path):
    import json

    config = EngineConfig.resolve(cache_dir=str(tmp_path))
    described = config.describe()
    assert json.loads(json.dumps(described)) == described
    assert described["cache_dir"] == str(tmp_path)


def test_resolve_executor_precedence(clean_env):
    from repro.config import (
        BACKENDS,
        ENV_BACKEND,
        ENV_EXECUTOR,
        EXECUTORS,
        resolve_backend,
        resolve_executor,
    )

    clean_env.delenv(ENV_EXECUTOR, raising=False)
    clean_env.delenv(ENV_BACKEND, raising=False)
    assert EXECUTORS == ("compiled", "interpreted")
    assert BACKENDS == ("memory", "sqlite")
    # Defaults.
    assert resolve_executor() == "compiled"
    assert resolve_backend() == "memory"
    # Environment beats the default (case/whitespace normalised).
    clean_env.setenv(ENV_EXECUTOR, " Interpreted ")
    clean_env.setenv(ENV_BACKEND, "SQLITE")
    assert resolve_executor() == "interpreted"
    assert resolve_backend() == "sqlite"
    # Explicit argument beats the environment.
    assert resolve_executor("compiled") == "compiled"
    assert resolve_backend("memory") == "memory"
    # Invalid values are rejected from every source.
    with pytest.raises(ValueError, match="executor must be one of"):
        resolve_executor("jitted")
    with pytest.raises(ValueError, match="backend must be one of"):
        resolve_backend("postgres")
    clean_env.setenv(ENV_EXECUTOR, "jitted")
    with pytest.raises(ValueError, match="executor must be one of"):
        resolve_executor()


def test_config_resolves_and_describes_executor(clean_env):
    from repro.config import ENV_BACKEND, ENV_EXECUTOR

    clean_env.delenv(ENV_EXECUTOR, raising=False)
    clean_env.delenv(ENV_BACKEND, raising=False)
    config = EngineConfig.resolve()
    assert config.executor == "compiled"
    assert config.backend == "memory"
    pinned = EngineConfig.resolve(executor="interpreted", backend="sqlite")
    assert pinned.executor == "interpreted"
    assert pinned.backend == "sqlite"
    described = pinned.describe()
    assert described["executor"] == "interpreted"
    assert described["backend"] == "sqlite"
    # A resolved config never re-reads the environment.
    clean_env.setenv(ENV_EXECUTOR, "interpreted")
    assert config.executor == "compiled"
    with pytest.raises(ValueError, match="executor must be one of"):
        EngineConfig(executor="jitted")
    with pytest.raises(ValueError, match="backend must be one of"):
        EngineConfig(backend="postgres")


def test_engine_stats_report_executor(clean_env):
    from repro.config import ENV_BACKEND, ENV_EXECUTOR

    clean_env.delenv(ENV_EXECUTOR, raising=False)
    clean_env.delenv(ENV_BACKEND, raising=False)
    engine = QueryEngine(
        _interval_db(),
        config=EngineConfig.resolve(executor="interpreted"),
    )
    stats = engine.stats()
    assert stats["executor"] == "interpreted"
    assert stats["backend"] == "memory"
    assert engine.evaluator.executor == "interpreted"
