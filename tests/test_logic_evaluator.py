"""Tests for query evaluation on region extensions.

Covers RegFO evaluation (Theorem 4.3's procedure), the fixed-point
operators including the paper's connectivity query (Section 5), the
transitive closure operators (Section 7) and rBIT.
"""

from fractions import Fraction

import pytest

from repro.engine import QueryEngine
from repro.errors import EvaluationError, UnboundVariableError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.logic.evaluator import Evaluator
from repro.logic.parser import parse_query
from repro.twosorted.structure import RegionExtension

F = Fraction


def db(text: str, arity: int) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


def truth(query: str, database: ConstraintDatabase, **kw) -> bool:
    return QueryEngine(database, **kw).truth(parse_query(query))


def evaluate(query: str, database: ConstraintDatabase):
    return QueryEngine(database).evaluate(parse_query(query))


INTERVAL = db("0 < x0 & x0 < 1", 1)
TWO_INTERVALS = db("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)", 1)
TOUCHING = db("(0 < x0 & x0 < 1) | (1 <= x0 & x0 < 2)", 1)
TRIANGLE = db("x0 >= 0 & x1 >= 0 & x0 + x1 <= 1", 2)
TWO_BOXES = db(
    "(0 <= x0 & x0 <= 1 & 0 <= x1 & x1 <= 1) | "
    "(2 <= x0 & x0 <= 3 & 0 <= x1 & x1 <= 1)",
    2,
)

CONN_1D = (
    "forall x1, x2. (S(x1) & S(x2)) -> "
    "(exists RX, RY. (x1) in RX & (x2) in RY & "
    "[lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
    "(exists Z. M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](RX, RY))"
)

CONN_2D = (
    "forall x1, y1, x2, y2. (S(x1, y1) & S(x2, y2)) -> "
    "(exists RX, RY. (x1, y1) in RX & (x2, y2) in RY & "
    "[lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
    "(exists Z. M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](RX, RY))"
)


class TestRegFOEvaluation:
    def test_linear_atom_relation(self):
        answer = evaluate("x > 0 & x < 1", INTERVAL)
        assert answer.variables == ("x",)
        assert answer.contains((F(1, 2),))
        assert not answer.contains((F(2),))

    def test_relation_atom_substitution(self):
        # S(2x) over S = (0,1) is 0 < 2x < 1.
        answer = evaluate("S(2*x)", INTERVAL)
        assert answer.contains((F(1, 4),))
        assert not answer.contains((F(3, 4),))

    def test_element_quantifiers(self):
        assert truth("exists x. S(x)", INTERVAL)
        assert not truth("forall x. S(x)", INTERVAL)
        assert truth("forall x. S(x) -> x < 1", INTERVAL)

    def test_region_quantifiers(self):
        # Some region is inside S, some region is not.
        assert truth("exists R. sub(R, S)", INTERVAL)
        assert not truth("forall R. sub(R, S)", INTERVAL)

    def test_in_region_links_sorts(self):
        # Every point of S is in some region contained in S.
        q = "forall x. S(x) -> (exists R. (x) in R & sub(R, S))"
        assert truth(q, INTERVAL)
        assert truth(q, TWO_INTERVALS)

    def test_adjacency_over_structure(self):
        # The interval (0,1) region is adjacent to the vertex at 0.
        q = ("exists R, Z. sub(R, S) & adj(R, Z) & "
             "(exists x. (x) in Z & x = 0)")
        assert truth(q, INTERVAL)

    def test_region_equality_semantics(self):
        q = "forall R. exists Z. R = Z"
        assert truth(q, INTERVAL)
        q2 = "exists R, Z. R != Z"
        assert truth(q2, INTERVAL)

    def test_answer_is_quantifier_free_relation(self):
        """Closure: the output of any query is again a linear relation."""
        answer = evaluate("exists y. S(y) & x < y", INTERVAL)
        assert answer.formula.is_quantifier_free()
        assert answer.contains((F(0),))
        assert answer.contains((F(1, 2),))
        assert not answer.contains((F(1),))

    def test_two_dimensional(self):
        answer = evaluate("exists y. S(x, y) & y > 0", TRIANGLE)
        assert answer.contains((F(1, 2),))
        assert not answer.contains((F(2),))

    def test_free_region_variable_rejected_at_top(self):
        with pytest.raises(EvaluationError):
            evaluate("sub(R, S)", INTERVAL)

    def test_unbound_region_variable(self):
        ext = RegionExtension.build(INTERVAL)
        with pytest.raises(UnboundVariableError):
            Evaluator(ext).evaluate(parse_query("sub(R, S)"))

    def test_boolean_queries_need_no_free_vars(self):
        with pytest.raises(EvaluationError):
            truth("S(x)", INTERVAL)


class TestConnectivity:
    """The paper's flagship example (Section 5)."""

    def test_single_interval_connected(self):
        assert truth(CONN_1D, INTERVAL)

    def test_two_intervals_disconnected(self):
        assert not truth(CONN_1D, TWO_INTERVALS)

    def test_touching_intervals_connected(self):
        assert truth(CONN_1D, TOUCHING)

    def test_triangle_connected(self):
        assert truth(CONN_2D, TRIANGLE)

    def test_two_boxes_disconnected(self):
        assert not truth(CONN_2D, TWO_BOXES)

    def test_empty_relation_trivially_connected(self):
        assert truth(CONN_1D, db("x0 < 0 & x0 > 0", 1))


class TestFixpointOperators:
    def test_lfp_reachability_from_vertex(self):
        # Regions reachable from the region containing 0 through S-regions.
        q = ("exists RX, RY. (exists x. x = 0 & (x) in RX) & "
             "(exists y. y = 1/2 & (y) in RY) & "
             "[lfp M(R, Rp). ((R = Rp) | "
             "(exists Z. M(R, Z) & adj(Z, Rp)))](RX, RY)")
        assert truth(q, INTERVAL)

    def test_ifp_equals_lfp_on_positive_bodies(self):
        lfp_q = ("exists RX, RY. [lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
                 "(exists Z. M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](RX, RY)")
        ifp_q = lfp_q.replace("lfp", "ifp")
        for database in (INTERVAL, TWO_INTERVALS):
            assert truth(lfp_q, database) == truth(ifp_q, database)

    def test_pfp_nonconverging_is_empty(self):
        # M(R) <-> !M(R): flips every stage, never converges -> empty.
        q = "exists X. [pfp M(R). !M(R)](X)"
        assert not truth(q, INTERVAL)

    def test_pfp_converging_behaves_like_ifp(self):
        q = "exists X. [pfp M(R). M(R) | sub(R, S)](X)"
        assert truth(q, INTERVAL)

    def test_fixpoint_stage_telemetry(self):
        ext = RegionExtension.build(TWO_INTERVALS)
        evaluator = Evaluator(ext)
        formula = parse_query(CONN_1D)
        evaluator.truth(formula)
        assert evaluator.metrics.get("fixpoint_stages") > 0
        assert evaluator.metrics.get("memo_hits") > 0


class TestTransitiveClosure:
    CONN_TC_1D = (
        "forall x1, x2. (S(x1) & S(x2)) -> "
        "(exists RX, RY. (x1) in RX & (x2) in RY & "
        "(RX = RY | [tc (R) -> (Rp). adj(R, Rp) & sub(R, S) & "
        "sub(Rp, S)](RX; RY)))"
    )

    def test_tc_connectivity_agrees_with_lfp(self):
        for database in (INTERVAL, TWO_INTERVALS, TOUCHING):
            assert truth(self.CONN_TC_1D, database) == truth(
                CONN_1D, database
            )

    def test_tc_on_nc1_decomposition(self):
        """Section 7 pairs TC with the NC¹ decomposition."""
        assert truth(
            self.CONN_TC_1D, INTERVAL, decomposition="nc1"
        )
        assert not truth(
            self.CONN_TC_1D, TWO_INTERVALS, decomposition="nc1"
        )

    def test_tc_requires_a_step(self):
        # No region is adjacent to itself, so with a false body TC is empty.
        q = "exists X, Y. [tc (R) -> (Rp). false](X; Y)"
        assert not truth(q, INTERVAL)

    def test_dtc_subset_of_tc(self):
        tc_q = ("exists X, Y. X != Y & "
                "[tc (R) -> (Rp). adj(R, Rp)](X; Y)")
        dtc_q = tc_q.replace("[tc", "[dtc")
        # TC over adjacency reaches things; DTC only where successors are
        # unique, so DTC-reachability implies TC-reachability.
        ext = RegionExtension.build(INTERVAL)
        ev = Evaluator(ext)
        tc_f = parse_query(tc_q)
        dtc_f = parse_query(dtc_q)
        assert ev.truth(tc_f)
        if ev.truth(dtc_f):
            assert ev.truth(tc_f)

    def test_dtc_unique_successor_chain(self):
        # Body: R < Rp in index order is not expressible; use adjacency
        # restricted to vertex-interval pattern in the interval database.
        q = ("exists X, Y. [dtc (R) -> (Rp). adj(R, Rp) & "
             "sub(R, S) & sub(Rp, S)](X; Y)")
        # In (0,1): the only S-regions form a single region plus nothing
        # adjacent inside S, so DTC is empty.
        assert not truth(q, INTERVAL)


class TestRBit:
    def test_rbit_exposes_bits(self):
        # φ(x) := x = 3/4 pins down numerator 3 (bits 1,2), denominator 4
        # (bit 3).  The interval db has two 0-dim regions (ranks 1, 2),
        # so bit 1 and 2 of the numerator are addressable but bit 3 of
        # the denominator is not.
        q = "exists Rn, Rd. [rbit x. 4*x = 3](Rn, Rd)"
        assert not truth(q, INTERVAL)  # denominator bit 3 out of range

        # x = 3 -> numerator 3 (bits 1,2), denominator 1 (bit 1).
        q2 = "exists Rn, Rd. [rbit x. x = 3](Rn, Rd)"
        assert truth(q2, INTERVAL)

    def test_rbit_specific_pairs(self):
        ext = RegionExtension.build(INTERVAL)
        ev = Evaluator(ext)
        zero_dim = ext.zero_dimensional_regions()
        assert len(zero_dim) == 2
        formula = parse_query("[rbit x. x = 3](Rn, Rd)")
        # numerator 3 = 0b11: bits 1 and 2; denominator 1: bit 1.
        r1, r2 = zero_dim[0].index, zero_dim[1].index
        assert ev.truth(formula, {"Rn": r1, "Rd": r1})
        assert ev.truth(formula, {"Rn": r2, "Rd": r1})
        assert not ev.truth(formula, {"Rn": r1, "Rd": r2})

    def test_rbit_zero_case(self):
        ext = RegionExtension.build(INTERVAL)
        ev = Evaluator(ext)
        formula = parse_query("[rbit x. x = 0](Rn, Rd)")
        high_dim = [r for r in ext.regions if r.dimension > 0]
        zero_dim = [r for r in ext.regions if r.dimension == 0]
        assert ev.truth(
            formula, {"Rn": high_dim[0].index, "Rd": high_dim[0].index}
        )
        assert not ev.truth(
            formula, {"Rn": high_dim[0].index, "Rd": high_dim[1].index}
        )
        assert not ev.truth(
            formula, {"Rn": zero_dim[0].index, "Rd": zero_dim[0].index}
        )

    def test_rbit_non_unique_is_empty(self):
        # φ(x) := S(x) defines an interval, not a point -> empty.
        q = "exists Rn, Rd. [rbit x. S(x)](Rn, Rd)"
        assert not truth(q, INTERVAL)

    def test_rbit_with_region_parameter(self):
        # φ(x, P) := x in P pins down a rational only for vertex regions.
        q = ("exists P, Rn, Rd. [rbit x. (x) in P](Rn, Rd) & "
             "(exists y. y = 2 & (y) in P)")
        database = db("(0 < x0 & x0 < 1) | x0 = 2", 1)
        assert truth(q, database)


class TestMemoisation:
    def test_repeated_evaluation_hits_memo(self):
        ext = RegionExtension.build(TRIANGLE)
        ev = Evaluator(ext)
        f = parse_query("exists R. sub(R, S) & (x, y) in R")
        first = ev.evaluate(f)
        before = ev.metrics.get("evaluations")
        second = ev.evaluate(f)
        assert ev.metrics.get("evaluations") == before
        assert first.equivalent(second)

    def test_memo_keys_are_structural_not_identity(self):
        # Regression: the memos used to key on id(formula), which both
        # misses structurally equal formulas and — worse — can collide
        # when a collected object's id is reused.  Two independent
        # parses of the same query must share one memo entry.
        ext = RegionExtension.build(TRIANGLE)
        ev = Evaluator(ext)
        first = parse_query("exists R. sub(R, S) & (x, y) in R")
        second = parse_query("exists R. sub(R, S) & (x, y) in R")
        assert first is not second
        ev.evaluate(first)
        evaluations = ev.metrics.get("evaluations")
        answer = ev.evaluate(second)
        assert ev.metrics.get("evaluations") == evaluations
        assert answer.equivalent(ev.evaluate(first))

    def test_fixpoint_memo_shared_across_equal_parses(self):
        ext = RegionExtension.build(TWO_INTERVALS)
        ev = Evaluator(ext)
        query = (
            "exists RX, RY. sub(RX, S) & sub(RY, S) & "
            "[lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
            "(exists Z. M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](RX, RY)"
        )
        assert ev.truth(parse_query(query))
        assert len(ev._fixpoint_memo) == 1
        stages = ev.metrics.get("fixpoint_stages")
        # A fresh parse is a different object but the same structure:
        # the fixpoint run must come from the memo, not be recomputed.
        assert ev.truth(parse_query(query))
        assert len(ev._fixpoint_memo) == 1
        assert ev.metrics.get("fixpoint_stages") == stages

    def test_distinct_formulas_do_not_collide(self):
        ext = RegionExtension.build(TWO_INTERVALS)
        ev = Evaluator(ext)
        assert ev.truth(parse_query("exists x. S(x)"))
        assert not ev.truth(parse_query("exists x. S(x) & x > 10"))
