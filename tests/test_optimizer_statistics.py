"""Persistence round-trips for the optimizer's statistics (satellite of E14).

The statistics entry is the optimizer's only cross-process memory, so it
gets the same guarantees as every other store kind: *bit-identical*
codec round-trips for arbitrary ``Fraction``-valued measurements,
corruption handled as quarantine-and-miss (a damaged file can slow the
next run down, never feed it a wrong plan), and fingerprints/keys that
survive ``PYTHONHASHSEED`` randomisation so statistics written by one
process are found by the next.
"""

import json
import os
import pathlib
import subprocess
import sys
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.statistics import (
    DECAY,
    STATS_VERSION,
    NodeStats,
    Statistics,
    make_node_stats,
    node_fingerprint,
)
from repro.obs.metrics import MetricsRegistry
from repro.store import codec
from repro.store.disk import DiskStore

F = Fraction

fractions = st.builds(
    F,
    st.integers(min_value=0, max_value=10**30),
    st.integers(min_value=1, max_value=10**30),
)

counter_names = st.sampled_from(
    ("lp.solves", "arrangement.faces", "evaluator.fixpoint_stages",
     "lp.filter_hits", "lp.filter_fallbacks")
)

node_stats = st.builds(
    make_node_stats,
    calls=fractions,
    wall=fractions,
    size=fractions,
    observations=fractions,
    counters=st.dictionaries(counter_names, fractions, max_size=4),
)

fingerprints = st.text(
    alphabet="0123456789abcdef:", min_size=1, max_size=64
)

statistics = st.builds(
    Statistics,
    nodes=st.dictionaries(fingerprints, node_stats, max_size=8),
    runs=fractions,
)


class TestCodecRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(statistics)
    def test_round_trip_is_exact_and_bit_identical(self, stats):
        blob = codec.dumps("statistics", stats)
        loaded = codec.loads("statistics", blob)
        assert loaded == stats
        assert codec.dumps("statistics", loaded) == blob

    @settings(max_examples=30, deadline=None)
    @given(statistics, st.dictionaries(fingerprints, node_stats, max_size=4))
    def test_merge_then_round_trip_stays_exact(self, stats, run_nodes):
        merged = stats.merge(run_nodes)
        blob = codec.dumps("statistics", merged)
        assert codec.loads("statistics", blob) == merged

    def test_wrong_version_is_a_codec_error(self):
        import pytest

        payload = codec.encode("statistics", Statistics())
        payload["version"] = STATS_VERSION + 1
        with pytest.raises(codec.CodecError):
            codec.decode("statistics", payload)

    def test_negative_numbers_are_rejected(self):
        import pytest

        payload = codec.encode("statistics", Statistics())
        payload["nodes"] = {
            "deadbeef": {
                "calls": [-1, 1],
                "wall": [0, 1],
                "size": [0, 1],
                "obs": [0, 1],
                "counters": {},
            }
        }
        with pytest.raises(codec.CodecError):
            codec.decode("statistics", payload)


class TestDiskStoreQuarantine:
    def test_corrupt_statistics_entry_is_quarantined_and_missed(
        self, tmp_path
    ):
        # A private registry: corruption staged here must not leak into
        # the process-global store counters other tests assert on.
        store = DiskStore(tmp_path, metrics=MetricsRegistry())
        key = codec.statistics_key()
        stats = Statistics().merge(
            {"aa": make_node_stats(calls=1, wall=F(1, 3))}
        )
        path = store.save("statistics", key, stats)
        assert store.load("statistics", key) == stats

        # Flip the fingerprint inside the stored payload: the envelope
        # checksum no longer matches, so the entry must be quarantined
        # and reported as a miss — never decoded into a wrong plan.
        path.write_text(path.read_text().replace('"aa"', '"ab"', 1))
        assert store.load("statistics", key) is None  # miss, not garbage
        quarantined = list(store.quarantine_root.rglob("*"))
        assert len([p for p in quarantined if p.is_file()]) == 1
        # The store stays usable after the quarantine.
        store.save("statistics", key, stats)
        assert store.load("statistics", key) == stats

    def test_truncated_entry_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path, metrics=MetricsRegistry())
        key = codec.statistics_key()
        path = store.save("statistics", key, Statistics())
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load("statistics", key) is None


PROBE = r"""
import json
from fractions import Fraction
from repro.logic.parser import parse_query
from repro.optimizer.statistics import node_fingerprint
from repro.store import codec
from repro.optimizer.statistics import Statistics, make_node_stats

formula = parse_query("exists x. exists y. (S(x) & S(y) & x < 1)")
stats = Statistics().merge({
    node_fingerprint(formula): make_node_stats(
        calls=3, wall=Fraction(7, 9),
        counters={"lp.solves": Fraction(5)},
    ),
})
print(json.dumps({
    "key": codec.statistics_key(),
    "fingerprint": node_fingerprint(formula),
    "blob": codec.dumps("statistics", stats).decode()
        if isinstance(codec.dumps("statistics", stats), bytes)
        else codec.dumps("statistics", stats),
}, sort_keys=True))
"""


def _run_probe(hashseed: str) -> str:
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(src)
    env.pop("REPRO_CACHE_DIR", None)
    proc = subprocess.run(
        [sys.executable, "-c", PROBE],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


class TestCrossProcessReuse:
    def test_keys_and_fingerprints_survive_hash_randomisation(self):
        outputs = {seed: _run_probe(seed) for seed in ("0", "42", "31337")}
        assert len(set(outputs.values())) == 1, outputs

    def test_statistics_written_by_one_process_warm_the_next(
        self, tmp_path
    ):
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        script = r"""
import json, sys
from repro.config import EngineConfig
from repro.engine import QueryEngine
from repro.logic.parser import parse_query
from repro.workloads.generators import interval_chain

engine = QueryEngine(
    interval_chain(4),
    config=EngineConfig.resolve(cache_dir=sys.argv[1], optimizer="on"),
)
engine.evaluate(parse_query("exists x. exists y. (S(x) & S(y) & x < 1)"))
print(json.dumps(engine.stats()["optimizer"]))
"""
        outputs = []
        for seed in ("0", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(src)
            env.pop("REPRO_CACHE_DIR", None)
            proc = subprocess.run(
                [sys.executable, "-c", script, str(tmp_path)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(json.loads(proc.stdout))
        cold, warm = outputs
        assert cold["stats_hits"] == 0
        assert cold["stats_updates"] == 1
        # The second process — under a different hash seed — found the
        # first process's measurements by fingerprint.
        assert warm["stats_hits"] > 0
        assert warm["persisted_nodes"] >= cold["persisted_nodes"]


class TestDecaySemantics:
    def test_merge_decays_history_and_adds_run_at_full_weight(self):
        first = Statistics().merge({"aa": make_node_stats(calls=4, wall=8)})
        second = first.merge({"aa": make_node_stats(calls=4, wall=8)})
        node = second.get("aa")
        assert node.calls == 4 * DECAY + 4
        assert node.wall == 8 * DECAY + 8
        assert second.runs == DECAY + 1

    def test_untouched_nodes_fade_out(self):
        stats = Statistics().merge({"aa": make_node_stats(calls=1, wall=1)})
        for __ in range(3):
            stats = stats.merge({})
        assert stats.get("aa").wall == DECAY**3

    def test_node_fingerprint_distinguishes_types_and_text(self):
        from repro.logic.parser import parse_query

        a = parse_query("exists x. S(x)")
        b = parse_query("exists x. S(x)")
        c = parse_query("forall x. S(x)")
        assert node_fingerprint(a) == node_fingerprint(b)
        assert node_fingerprint(a) != node_fingerprint(c)
