"""Tests for workload generators and the expressiveness extensions."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError, WorkloadError
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.extensions.convex_closure import (
    convex_hull_of_points,
    convex_hull_relation,
    mult_holds,
)
from repro.extensions.nonboolean import (
    convex_hull_of_regions,
    union_of_regions,
)
from repro.twosorted.structure import RegionExtension
from repro.workloads.generators import (
    chain_of_boxes,
    convex_polygon,
    disconnected_blobs,
    grid_relation,
    interval_chain,
    nested_boxes,
    random_halfplanes,
    random_hyperplanes,
    stripes,
)

F = Fraction


class TestGenerators:
    def test_interval_chain_structure(self):
        database = interval_chain(3)
        relation = database.spatial
        assert relation.contains((F(0),))
        assert relation.contains((F(3),))
        assert not relation.contains((F(4),))

    def test_interval_chain_gap(self):
        relation = interval_chain(2, gap=True).spatial
        assert relation.contains((F(1),))
        assert not relation.contains((F(3, 2),))
        assert relation.contains((F(2),))

    def test_stripes_and_boxes(self):
        assert stripes(3).spatial.arity == 2
        box_rel = chain_of_boxes(2).spatial
        assert box_rel.contains((F(1), F(1, 2)))
        assert not box_rel.contains((F(1), F(2)))

    def test_grid_face_count_scales_quadratically(self):
        from repro.arrangement.builder import build_arrangement

        small = build_arrangement(grid_relation(2).spatial)
        large = build_arrangement(grid_relation(4).spatial)
        # (n lines each way) -> (n+1)^2 cells + edges + vertices.
        assert len(large) > 2 * len(small)

    def test_convex_polygon_valid(self):
        for sides in (3, 5, 7):
            relation = convex_polygon(sides).spatial
            [poly] = relation.polyhedra()
            assert not poly.is_empty()
            assert poly.is_bounded()
            assert len(poly.vertices()) == sides

    def test_nested_boxes_disconnected(self):
        from repro.queries.connectivity import is_connected

        assert not is_connected(nested_boxes(2), "ground")

    def test_disconnected_blobs_deterministic(self):
        a = disconnected_blobs(3, seed=5).spatial
        b = disconnected_blobs(3, seed=5).spatial
        assert a.formula == b.formula

    def test_random_halfplanes_seeded(self):
        a = random_halfplanes(4, seed=1)
        b = random_halfplanes(4, seed=1)
        assert a.formula == b.formula

    def test_random_hyperplanes_distinct(self):
        planes = random_hyperplanes(10, 2, seed=3)
        assert len(set(planes)) == 10

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            interval_chain(0)
        with pytest.raises(WorkloadError):
            convex_polygon(2)
        with pytest.raises(WorkloadError):
            grid_relation(0)


class TestConvexClosureWarning:
    """Section 4 / Figure 5: convex closure defines multiplication."""

    def test_mult_small_table(self):
        for x in range(1, 5):
            for y in range(1, 5):
                for z in range(1, 17):
                    expected = (x * y == z)
                    assert mult_holds(F(x), F(y), F(z)) is expected

    @given(
        x=st.fractions(min_value="1/4", max_value=8, max_denominator=8),
        y=st.fractions(min_value="1/4", max_value=8, max_denominator=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_mult_property_exact(self, x, y):
        assert mult_holds(x, y, x * y)
        assert not mult_holds(x, y, x * y + 1)

    def test_mult_requires_positive(self):
        with pytest.raises(ValueError):
            mult_holds(F(-1), F(1), F(1))

    def test_hull_of_union(self):
        relation = ConstraintRelation.make(
            ("x0", "x1"),
            parse_formula(
                "(x0 = 0 & x1 = 0) | (x0 = 2 & x1 = 0) | (x0 = 0 & x1 = 2)"
            ),
        )
        hull = convex_hull_relation(relation)
        assert hull.contains((F(1), F(1, 2)))   # inside the triangle
        assert hull.contains((F(1), F(1)))      # on the hypotenuse
        assert not hull.contains((F(2), F(2)))

    def test_hull_requires_bounded(self):
        relation = ConstraintRelation.make(
            ("x0",), parse_formula("x0 >= 0")
        )
        with pytest.raises(GeometryError):
            convex_hull_relation(relation)

    def test_hull_of_points_basics(self):
        hull = convex_hull_of_points([(F(0),), (F(2),)])
        assert hull.closure_contains((F(1),))
        with pytest.raises(GeometryError):
            convex_hull_of_points([])


class TestNonBooleanOutlook:
    def test_union_of_regions_reconstructs_relation(self):
        database = interval_chain(1)
        extension = RegionExtension.build(database)
        inside = [
            r.index for r in extension.regions
            if extension.region_subset_of_spatial(r.index)
        ]
        rebuilt = union_of_regions(extension, inside)
        assert rebuilt.equivalent(database.spatial)

    def test_union_of_no_regions_empty(self):
        extension = RegionExtension.build(interval_chain(1))
        assert union_of_regions(extension, []).is_empty()

    def test_convex_hull_of_regions(self):
        database = interval_chain(2, gap=True)  # [0,1] ∪ [2,3]
        extension = RegionExtension.build(database)
        inside = [
            r.index for r in extension.regions
            if extension.region_subset_of_spatial(r.index)
        ]
        hull = convex_hull_of_regions(extension, inside)
        # Hull fills the gap.
        assert hull.contains((F(3, 2),))
        assert not hull.contains((F(4),))

    def test_convex_hull_rejects_unbounded(self):
        from repro.constraints.database import ConstraintDatabase

        database = ConstraintDatabase.from_formula(
            parse_formula("x0 >= 0"), 1
        )
        extension = RegionExtension.build(database)
        with pytest.raises(GeometryError):
            convex_hull_of_regions(
                extension, [r.index for r in extension.regions]
            )
