"""Warm-start wiring: engines, CLI and environment resolve the store.

Covers the tentpole's integration surface: a second engine (or process)
pointed at the same cache directory answers from disk; ``--cache-dir``,
``REPRO_CACHE_DIR`` and ``REPRO_CACHE_BUDGET`` all reach the builder;
the naive benchmark baseline bypasses persistence; and the LRU budget
actually bounds the store.
"""

import io
import json

import pytest

from repro import store as store_pkg
from repro.arrangement.builder import build_arrangement
from repro.cli import main
from repro.constraints.io import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.engine import EngineCache, QueryEngine
from repro.obs.metrics import MetricsRegistry
from repro.store.disk import DiskStore
from repro.workloads.generators import interval_chain


def private_store(tmp_path, **kwargs) -> DiskStore:
    return DiskStore(tmp_path / "cache", metrics=MetricsRegistry(), **kwargs)


def triangle() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


def test_second_engine_hits_disk(tmp_path):
    database = interval_chain(3)
    store = private_store(tmp_path)
    first = QueryEngine(
        database, cache=EngineCache(metrics=MetricsRegistry()),
        cache_dir=store,
    )
    cold = first.evaluate("S(x) & x < 1")
    assert store.stats()["writes"] > 0 and store.stats()["hits"] == 0

    # Fresh in-memory caches simulate a new process on the same dir.
    second = QueryEngine(
        database, cache=EngineCache(metrics=MetricsRegistry()),
        cache_dir=store,
    )
    warm = second.evaluate("S(x) & x < 1")
    assert str(warm) == str(cold)
    assert store.stats()["hits"] > 0
    assert second.stats()["store"]["hits"] > 0


def test_engine_cache_store_reaches_builder(tmp_path):
    store = private_store(tmp_path)
    relation = triangle()
    cache = EngineCache(metrics=MetricsRegistry(), store=store)
    built = cache.arrangement(relation)
    assert store.stats()["writes"] == 1

    fresh = EngineCache(metrics=MetricsRegistry(), store=store)
    warm = fresh.arrangement(relation)
    assert warm.faces == built.faces
    assert warm.relation is relation
    assert store.stats()["hits"] == 1


def test_env_var_resolution(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    store = store_pkg.active_store()
    assert store is not None
    assert str(store.root).startswith(str(tmp_path))
    # Same (path, budget) resolves to the same instance.
    assert store_pkg.active_store() is store

    monkeypatch.setenv("REPRO_CACHE_BUDGET", "4096")
    budgeted = store_pkg.active_store()
    assert budgeted.size_budget == 4096

    monkeypatch.setenv("REPRO_CACHE_BUDGET", "not-a-number")
    with pytest.raises(ValueError):
        store_pkg.active_store()

    monkeypatch.delenv("REPRO_CACHE_BUDGET")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert store_pkg.active_store() is None


def test_store_scope_pins_and_restores(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    pinned = private_store(tmp_path)
    assert store_pkg.active_store() is None
    with store_pkg.store_scope(pinned) as active:
        assert active is pinned
        assert store_pkg.active_store() is pinned
        # A None scope inside is a no-op, not an off switch …
        with store_pkg.store_scope(None):
            pass
    assert store_pkg.active_store() is None
    # … and configure_store survives until cleared.
    previous = store_pkg.configure_store(pinned)
    assert previous is None
    assert store_pkg.active_store() is pinned
    store_pkg.configure_store(None)
    assert store_pkg.active_store() is None


def test_store_scope_is_thread_local(tmp_path, monkeypatch):
    """Concurrent scopes on worker threads never leak across threads.

    Regression: the override used to be a bare module global, so
    interleaved enter/exit across threads could restore a stale value
    and leave another thread's store pinned process-wide.
    """
    import threading
    from concurrent.futures import ThreadPoolExecutor

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    workers = 4
    barrier = threading.Barrier(workers)

    def worker(index: int):
        mine = store_pkg.store_at(tmp_path / f"store-{index}")
        with store_pkg.store_scope(mine):
            barrier.wait(timeout=10)  # everyone inside a scope at once
            assert store_pkg.active_store() is mine
        return store_pkg.active_store()

    with ThreadPoolExecutor(max_workers=workers) as pool:
        after = list(pool.map(worker, range(workers)))

    assert after == [None] * workers
    assert store_pkg.active_store() is None


def test_naive_baseline_bypasses_store(tmp_path):
    store = private_store(tmp_path)
    relation = triangle()
    build_arrangement(relation, store=store, witness_reuse=False)
    build_arrangement(relation, store=store, dedup=False)
    assert store.stats() == {
        "hits": 0, "misses": 0, "writes": 0, "corrupt_entries": 0,
        "evictions": 0, "entries": 0, "bytes": 0,
    }


def test_lru_eviction_respects_budget(tmp_path):
    store = private_store(tmp_path, size_budget=4000)
    relations = [
        ConstraintRelation.make(
            ("x", "y"), parse_formula(f"x >= 0 & y >= 0 & x + y <= {k}")
        )
        for k in range(1, 6)
    ]
    for relation in relations:
        build_arrangement(relation, store=store)
    stats = store.stats()
    assert stats["evictions"] > 0
    assert stats["bytes"] <= 4000
    # The most recent entry always survives.
    assert build_arrangement(relations[-1], store=store) is not None
    assert store.stats()["hits"] == 1


def test_cli_cache_dir_warm_starts_profile(tmp_path):
    cache = tmp_path / "clicache"
    query = ["profile", "examples/map.cdb", "exists x. S(x, x)",
             "--cache-dir", str(cache)]
    cold_out = io.StringIO()
    assert main(query, out=cold_out) == 0
    cold = json.loads(cold_out.getvalue())
    assert cold["cache_dir"] == str(cache)
    assert cold["store"]["writes"] > 0

    warm_out = io.StringIO()
    assert main(query, out=warm_out) == 0
    warm = json.loads(warm_out.getvalue())
    assert warm["answer"] == cold["answer"]
    assert warm["metrics"]["store.hits"] > 0
    # The span tree surfaces where the warm run's time went.
    flat = json.dumps(warm["spans"])
    assert "store.load" in flat


def test_bench_metadata_reports_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "benchcache"))
    out = io.StringIO()
    assert main(["bench", "e2", "--sizes", "4", "--check-only"],
                out=out) == 0
    record = json.loads(out.getvalue())
    assert record["metadata"]["cache_dir"] is not None
    assert record["metadata"]["store"]["writes"] > 0

    warm_out = io.StringIO()
    assert main(["bench", "e2", "--sizes", "4", "--check-only"],
                out=warm_out) == 0
    warm = json.loads(warm_out.getvalue())
    assert warm["all_match"]
    assert warm["metadata"]["store"]["hits"] > 0
