"""Tests for the decomposition validator and the cross-polytope workload."""

from fractions import Fraction

from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.regions.arrangement_regions import ArrangementDecomposition
from repro.regions.nc1 import NC1Decomposition
from repro.regions.validate import validate_decomposition
from repro.workloads.generators import cross_polytope, interval_chain

F = Fraction


def triangle() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


PROBES_2D = [
    (F(0), F(0)), (F(1, 4), F(1, 4)), (F(2), F(2)), (F(-1), F(0)),
]


class TestValidator:
    def test_arrangement_triangle_valid(self):
        report = validate_decomposition(
            ArrangementDecomposition(triangle()),
            probes=PROBES_2D,
            expect_partition=True,
        )
        assert report.ok, str(report)
        assert report.checks > 50

    def test_nc1_triangle_valid_without_partition(self):
        report = validate_decomposition(
            NC1Decomposition(triangle()),
            probes=[],
        )
        assert report.ok, str(report)

    def test_arrangement_chain_valid(self):
        decomposition = ArrangementDecomposition(
            interval_chain(2, gap=True).spatial
        )
        report = validate_decomposition(
            decomposition,
            probes=[(F(0),), (F(3, 2),), (F(10),)],
            expect_partition=True,
        )
        assert report.ok, str(report)

    def test_report_counts_and_str(self):
        report = validate_decomposition(
            ArrangementDecomposition(interval_chain(1).spatial)
        )
        assert "OK" in str(report)

    def test_violation_detected(self):
        decomposition = ArrangementDecomposition(interval_chain(1).spatial)
        # Sabotage a cached containment bit to prove the validator sees it.
        decomposition._subset_of_relation[0] = not \
            decomposition.region_subset_of_relation(0)
        report = validate_decomposition(decomposition)
        assert not report.ok
        assert any("inconsistent" in v for v in report.violations)
        assert "FAILED" in str(report)


class TestCrossPolytope:
    def test_two_dimensional_diamond(self):
        database = cross_polytope(2)
        relation = database.spatial
        assert relation.contains((F(0), F(0)))
        assert relation.contains((F(1), F(0)))
        assert relation.contains((F(1, 2), F(1, 2)))
        assert not relation.contains((F(1), F(1)))
        [poly] = relation.polyhedra()
        assert set(poly.vertices()) == {
            (F(1), F(0)), (F(-1), F(0)), (F(0), F(1)), (F(0), F(-1)),
        }

    def test_three_dimensional_octahedron(self):
        database = cross_polytope(3)
        [poly] = database.spatial.polyhedra()
        vertices = poly.vertices()
        assert len(vertices) == 6
        assert all(
            sum(abs(c) for c in vertex) == 1 for vertex in vertices
        )

    def test_representation_size_doubles_per_dimension(self):
        sizes = [cross_polytope(d).size() for d in (1, 2, 3)]
        assert sizes[1] > 1.5 * sizes[0]
        assert sizes[2] > 1.5 * sizes[1]
