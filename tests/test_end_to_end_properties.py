"""End-to-end randomised properties across subsystem boundaries.

These tests tie several layers together under hypothesis: random
databases through connectivity (logic vs. graph ground truth), NC¹
decompositions covering their source polyhedra, arrangement faces
classifying points consistently with the relation, and the LP counters.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.obs.metrics import get_registry, reset_metrics
from repro.queries.connectivity import is_connected
from repro.regions.nc1 import decompose_disjunct
from repro.twosorted.structure import RegionExtension

F = Fraction


@st.composite
def one_dim_databases(draw):
    """A union of up to three rational intervals with mixed openness."""
    pieces = draw(
        st.lists(
            st.tuples(
                st.integers(-4, 4),
                st.integers(1, 3),
                st.booleans(),
            ),
            min_size=1,
            max_size=3,
        )
    )
    parts = []
    for lo, width, open_ends in pieces:
        op = "<" if open_ends else "<="
        parts.append(f"({lo} {op} x0 & x0 {op} {lo + width})")
    return ConstraintDatabase.from_formula(
        parse_formula(" | ".join(parts)), 1
    )


@st.composite
def convex_polygons(draw):
    """A random (possibly empty/degenerate) intersection of halfplanes."""
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(-2, 2), st.integers(-2, 2), st.integers(-4, 4)
            ).filter(lambda t: (t[0], t[1]) != (0, 0)),
            min_size=3,
            max_size=5,
        )
    )
    atoms = [f"({a}*x0 + {b}*x1 <= {c})" for a, b, c in rows]
    # Keep it bounded with a surrounding box.
    atoms += ["(-6 <= x0)", "(x0 <= 6)", "(-6 <= x1)", "(x1 <= 6)"]
    from repro.constraints.relation import ConstraintRelation

    return ConstraintRelation.make(
        ("x0", "x1"), parse_formula(" & ".join(atoms))
    )


class TestConnectivityAgreement:
    @given(database=one_dim_databases())
    @settings(max_examples=15, deadline=None)
    def test_lfp_matches_union_find(self, database):
        assert is_connected(database, "lfp") == \
            is_connected(database, "ground")

    @given(database=one_dim_databases())
    @settings(max_examples=10, deadline=None)
    def test_tc_matches_union_find(self, database):
        assert is_connected(database, "tc") == \
            is_connected(database, "ground")


class TestNC1Coverage:
    @given(poly_relation=convex_polygons())
    @settings(max_examples=15, deadline=None)
    def test_regions_cover_their_polyhedron(self, poly_relation):
        [poly] = poly_relation.polyhedra()
        if poly.is_empty():
            assert decompose_disjunct(poly) == []
            return
        regions = decompose_disjunct(poly)
        assert regions
        # Every region's sample stays in the closure; the polyhedron's
        # own witnesses are covered.
        closed = poly.closure()
        for region in regions:
            assert closed.contains(region.sample_point())
        witness = poly.feasible_point()
        assert any(r.contains(witness) for r in regions), witness
        interior = poly.relative_interior_point()
        if interior is not None:
            assert any(r.contains(interior) for r in regions)


class TestArrangementClassification:
    @given(
        database=one_dim_databases(),
        probes=st.lists(
            st.fractions(min_value=-6, max_value=8, max_denominator=6),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_region_membership_classifies_points(self, database, probes):
        """x ∈ S iff the unique region containing x is inside S."""
        extension = RegionExtension.build(database)
        relation = extension.spatial
        for probe in probes:
            holders = [
                region for region in extension.regions
                if region.contains((probe,))
            ]
            assert len(holders) == 1
            inside = extension.region_subset_of_spatial(holders[0].index)
            assert inside == relation.contains((probe,))


class TestDecompositionInvariance:
    """Topological queries do not depend on the decomposition (the
    paper's closing remark: the languages' expressive power is
    decomposition-independent as long as the decomposition is usable)."""

    @given(database=one_dim_databases())
    @settings(max_examples=8, deadline=None)
    def test_connectivity_same_across_decompositions(self, database):
        verdicts = {
            kind: is_connected(database, "lfp", decomposition=kind)
            for kind in ("arrangement", "nc1")
        }
        assert len(set(verdicts.values())) == 1, verdicts

    def test_refined_equals_plain_on_single_relation(self):
        # With a single relation, "refined" adds no hyperplanes.
        database = ConstraintDatabase.from_formula(
            parse_formula("(0 <= x0 & x0 <= 1) | (3 <= x0 & x0 <= 4)"), 1
        )
        plain = is_connected(database, "lfp", "arrangement")
        refined = is_connected(database, "lfp", "refined")
        assert plain is False
        assert refined is False


class TestInstrumentation:
    def test_lp_counters_move(self):
        registry = get_registry()
        reset_metrics("lp.")
        database = ConstraintDatabase.from_formula(
            parse_formula("0 < x0 & x0 < 1"), 1
        )
        RegionExtension.build(database)
        stats = registry.snapshot("lp.")
        # The module-level feasibility cache may satisfy everything, so
        # only the combined activity is guaranteed.
        assert stats["lp.solves"] + stats["lp.cache_hits"] > 0
        reset_metrics("lp.")
        assert registry.get("lp.solves") == 0
        assert registry.get("lp.cache_hits") == 0
