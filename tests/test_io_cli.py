"""Tests for serialisation and the command-line interface."""

import io

import pytest

from repro.errors import ParseError
from repro.cli import main
from repro.constraints.database import ConstraintDatabase
from repro.constraints.io import (
    dumps_database,
    load_database,
    loads_database,
    save_database,
)
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation


def sample_database() -> ConstraintDatabase:
    return ConstraintDatabase.make({
        "S": ConstraintRelation.make(
            ("x0", "x1"),
            parse_formula("x0 >= 0 & x1 >= 0 & x0 + x1 <= 1"),
        ),
        "Zone": ConstraintRelation.make(
            ("x0", "x1"), parse_formula("x0 = x1")
        ),
    })


class TestSerialisation:
    def test_roundtrip(self):
        database = sample_database()
        text = dumps_database(database)
        back = loads_database(text)
        assert back.names() == database.names()
        for name, relation in database:
            assert back.relation(name).equivalent(relation)

    def test_file_roundtrip(self, tmp_path):
        database = sample_database()
        path = tmp_path / "db.cdb"
        save_database(database, path)
        back = load_database(path)
        assert back.relation("S").equivalent(database.relation("S"))

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# repro database v1\n\n"
            "# a comment\n"
            "RELATION S (x0)\n"
            "x0 > 0\n\n"
        )
        database = loads_database(text)
        assert database.names() == ("S",)

    def test_format_errors(self):
        for bad in [
            "",                                     # no relations
            "RELATION S (x0)\n",                    # missing formula
            "x0 > 0\n",                             # no header line
            "RELATION s (x0)\nx0 > 0\n",            # lowercase name
            "RELATION S ()\nx0 > 0\n",              # empty schema
            "RELATION S (x0)\nx0 > 0\n"
            "RELATION S (x0)\nx0 < 0\n",            # duplicate
        ]:
            with pytest.raises(ParseError):
                loads_database(bad)


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.cdb"
    save_database(sample_database(), path)
    return str(path)


@pytest.fixture
def one_dim_file(tmp_path):
    database = ConstraintDatabase.make({
        "S": ConstraintRelation.make(
            ("x0",),
            parse_formula("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"),
        )
    })
    path = tmp_path / "db1.cdb"
    save_database(database, path)
    return str(path)


def run_cli(*argv) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


class TestCli:
    def test_check(self, db_file):
        code, output = run_cli("check", db_file)
        assert code == 0
        assert "S(x0, x1)" in output
        assert "Zone" in output

    def test_regions(self, one_dim_file):
        code, output = run_cli("regions", one_dim_file)
        assert code == 0
        assert "9 regions" in output
        assert "in S" in output

    def test_query_boolean(self, one_dim_file):
        code, output = run_cli(
            "query", one_dim_file, "exists x. S(x)"
        )
        assert code == 0
        assert "answer: True" in output

    def test_query_relation_answer(self, one_dim_file):
        code, output = run_cli(
            "query", one_dim_file, "S(x) & x < 1"
        )
        assert code == 0
        assert "answer relation over (x)" in output
        assert "sample points" in output

    def test_query_free_region_var_rejected(self, one_dim_file):
        code, output = run_cli("query", one_dim_file, "sub(R, S)")
        assert code == 2
        assert "free region" in output

    def test_query_parse_error(self, one_dim_file):
        code, output = run_cli("query", one_dim_file, "S(x")
        assert code == 1
        assert "error" in output

    def test_arrangement(self, db_file):
        code, output = run_cli("arrangement", db_file)
        assert code == 0
        assert "2-dimensional faces: 7" in output
        assert "incidence edges" in output

    def test_encode(self, one_dim_file):
        code, output = run_cli("encode", one_dim_file)
        assert code == 0
        assert "word:" in output
        assert "small coordinate property: True" in output

    def test_render(self, db_file, tmp_path):
        target = str(tmp_path / "out.svg")
        code, output = run_cli("render", db_file, target)
        assert code == 0
        with open(target) as handle:
            assert handle.read().startswith("<svg")

    def test_render_bad_viewport(self, db_file, tmp_path):
        target = str(tmp_path / "out.svg")
        code, __ = run_cli(
            "render", db_file, target, "--viewport", "1,2"
        )
        assert code == 2

    def test_missing_file(self):
        code, output = run_cli("check", "/nonexistent/db.cdb")
        assert code == 1
        assert "error" in output

    def test_nc1_flag(self, one_dim_file):
        code, output = run_cli(
            "regions", one_dim_file, "--decomposition", "nc1"
        )
        assert code == 0
