"""Tests for serialisation and the command-line interface."""

import io

import pytest

from repro.errors import ParseError
from repro.cli import main
from repro.constraints.database import ConstraintDatabase
from repro.constraints.io import (
    dumps_database,
    load_database,
    loads_database,
    save_database,
)
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation


def sample_database() -> ConstraintDatabase:
    return ConstraintDatabase.make({
        "S": ConstraintRelation.make(
            ("x0", "x1"),
            parse_formula("x0 >= 0 & x1 >= 0 & x0 + x1 <= 1"),
        ),
        "Zone": ConstraintRelation.make(
            ("x0", "x1"), parse_formula("x0 = x1")
        ),
    })


class TestSerialisation:
    def test_roundtrip(self):
        database = sample_database()
        text = dumps_database(database)
        back = loads_database(text)
        assert back.names() == database.names()
        for name, relation in database:
            assert back.relation(name).equivalent(relation)

    def test_file_roundtrip(self, tmp_path):
        database = sample_database()
        path = tmp_path / "db.cdb"
        save_database(database, path)
        back = load_database(path)
        assert back.relation("S").equivalent(database.relation("S"))

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# repro database v1\n\n"
            "# a comment\n"
            "RELATION S (x0)\n"
            "x0 > 0\n\n"
        )
        database = loads_database(text)
        assert database.names() == ("S",)

    def test_format_errors(self):
        for bad in [
            "",                                     # no relations
            "RELATION S (x0)\n",                    # missing formula
            "x0 > 0\n",                             # no header line
            "RELATION s (x0)\nx0 > 0\n",            # lowercase name
            "RELATION S ()\nx0 > 0\n",              # empty schema
            "RELATION S (x0)\nx0 > 0\n"
            "RELATION S (x0)\nx0 < 0\n",            # duplicate
        ]:
            with pytest.raises(ParseError):
                loads_database(bad)


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.cdb"
    save_database(sample_database(), path)
    return str(path)


@pytest.fixture
def one_dim_file(tmp_path):
    database = ConstraintDatabase.make({
        "S": ConstraintRelation.make(
            ("x0",),
            parse_formula("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"),
        )
    })
    path = tmp_path / "db1.cdb"
    save_database(database, path)
    return str(path)


def run_cli(*argv) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


class TestCli:
    def test_check(self, db_file):
        code, output = run_cli("check", db_file)
        assert code == 0
        assert "S(x0, x1)" in output
        assert "Zone" in output

    def test_regions(self, one_dim_file):
        code, output = run_cli("regions", one_dim_file)
        assert code == 0
        assert "9 regions" in output
        assert "in S" in output

    def test_query_boolean(self, one_dim_file):
        code, output = run_cli(
            "query", one_dim_file, "exists x. S(x)"
        )
        assert code == 0
        assert "answer: True" in output

    def test_query_relation_answer(self, one_dim_file):
        code, output = run_cli(
            "query", one_dim_file, "S(x) & x < 1"
        )
        assert code == 0
        assert "answer relation over (x)" in output
        assert "sample points" in output

    def test_query_free_region_var_rejected(self, one_dim_file):
        code, output = run_cli("query", one_dim_file, "sub(R, S)")
        assert code == 2
        assert "free region" in output

    def test_query_parse_error(self, one_dim_file):
        code, output = run_cli("query", one_dim_file, "S(x")
        assert code == 1
        assert "error" in output

    def test_arrangement(self, db_file):
        code, output = run_cli("arrangement", db_file)
        assert code == 0
        assert "2-dimensional faces: 7" in output
        assert "incidence edges" in output

    def test_encode(self, one_dim_file):
        code, output = run_cli("encode", one_dim_file)
        assert code == 0
        assert "word:" in output
        assert "small coordinate property: True" in output

    def test_render(self, db_file, tmp_path):
        target = str(tmp_path / "out.svg")
        code, output = run_cli("render", db_file, target)
        assert code == 0
        with open(target) as handle:
            assert handle.read().startswith("<svg")

    def test_render_bad_viewport(self, db_file, tmp_path):
        target = str(tmp_path / "out.svg")
        code, __ = run_cli(
            "render", db_file, target, "--viewport", "1,2"
        )
        assert code == 2

    def test_missing_file(self):
        code, output = run_cli("check", "/nonexistent/db.cdb")
        assert code == 1
        assert "error" in output

    def test_nc1_flag(self, one_dim_file):
        code, output = run_cli(
            "regions", one_dim_file, "--decomposition", "nc1"
        )
        assert code == 0

    def test_trace_flag_prints_span_tree(self, one_dim_file):
        code, output = run_cli(
            "query", one_dim_file, "exists x. S(x)", "--trace"
        )
        assert code == 0
        assert "answer: True" in output
        assert "trace:" in output
        assert "query:" in output          # root span named after command
        assert "evaluate:" in output
        from repro.obs import TRACER
        assert not TRACER.enabled          # collection ended cleanly


class TestProfileCommand:
    def run_profile(self, db_path, query, *extra):
        import json

        code, output = run_cli("profile", db_path, query, *extra)
        assert code == 0
        return json.loads(output)

    def test_golden_span_tree_shape(self, one_dim_file):
        from repro.engine import invalidate_cache
        from repro.geometry.simplex import clear_feasibility_cache

        invalidate_cache()                 # force a cold build ...
        clear_feasibility_cache()          # ... with real LP solves
        payload = self.run_profile(one_dim_file, "exists x. S(x)")

        assert payload["command"] == "profile"
        assert payload["query"] == "exists x. S(x)"
        assert payload["decomposition"] == "arrangement"
        assert len(payload["fingerprint"]) == 64
        assert payload["answer"] == {"variables": [], "empty": False}

        # The span tree: profile -> {load, evaluate -> extension.build
        # -> arrangement.build -> lp.feasible (aggregated)}.
        spans = payload["spans"]
        assert spans["name"] == "profile"
        assert set(spans) == {"name", "calls", "wall_ms", "children"}
        names = [child["name"] for child in spans["children"]]
        assert names[0] == "load"

        def find(node, name):
            if node["name"] == name:
                return node
            for child in node["children"]:
                found = find(child, name)
                if found is not None:
                    return found
            return None

        evaluate = find(spans, "evaluate")
        assert evaluate is not None
        build = find(evaluate, "extension.build")
        assert build is not None
        assert build["attrs"]["regions"] == 9
        arrangement = find(build, "arrangement.build")
        assert arrangement is not None
        lp = find(spans, "lp.feasible")
        assert lp is not None and lp["calls"] > 1   # aggregated

        # The metrics dump sits next to the tree and covers the layers.
        metrics = payload["metrics"]
        assert metrics["lp.solves"] > 0
        assert metrics["arrangement.dfs_nodes"] > 0
        assert metrics["evaluator.evaluations"] > 0

    def test_second_profile_hits_the_cache(self, one_dim_file):
        from repro.engine import invalidate_cache

        invalidate_cache()
        cold = self.run_profile(one_dim_file, "exists x. S(x)")
        warm = self.run_profile(one_dim_file, "exists x. S(x)")
        assert cold["metrics"]["engine.cache.extension.misses"] == 1
        assert warm["metrics"]["engine.cache.extension.hits"] == 1
        assert warm["metrics"].get("engine.cache.extension.misses", 0) == 0
        assert warm["fingerprint"] == cold["fingerprint"]

    def test_profile_rejects_free_region_vars(self, one_dim_file):
        code, output = run_cli("profile", one_dim_file, "sub(R, S)")
        assert code == 2
        assert "free region" in output
        from repro.obs import TRACER
        assert not TRACER.enabled


class TestMetricsCommand:
    def test_bare_dump_is_valid_exposition(self):
        code, output = run_cli("metrics")
        assert code == 0
        assert "# TYPE repro_lp_solves_total counter" in output

    def test_query_populates_histograms(self, one_dim_file):
        code, output = run_cli(
            "metrics", one_dim_file, "exists x. S(x)"
        )
        assert code == 0
        assert "repro_lp_solves_total" in output
        assert "# TYPE repro_engine_evaluate_seconds histogram" in output
        assert "repro_engine_evaluate_seconds_count" in output
        assert 'le="+Inf"' in output

    def test_free_variable_query_rejected(self, one_dim_file):
        code, output = run_cli("metrics", one_dim_file, "sub(R, S)")
        assert code == 2
        assert "free region" in output


class TestSlowlogCommand:
    def test_missing_path_is_an_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_LOG", raising=False)
        code, output = run_cli("slowlog")
        assert code == 2
        assert "REPRO_SLOW_LOG" in output

    def test_reads_records(self, tmp_path):
        import json as _json

        path = tmp_path / "slow.jsonl"
        record = {
            "ts": "2026-08-09T00:00:00+00:00", "tenant": "acme",
            "database": "demo", "query": "S(x0)", "wall_ms": 321.5,
            "threshold_ms": 250.0, "explain": {"plan": {}},
        }
        path.write_text(_json.dumps(record) + "\n")
        code, output = run_cli("slowlog", str(path))
        assert code == 0
        assert "tenant=acme" in output
        assert "321.5ms" in output
        assert "S(x0)" in output

    def test_json_emits_full_records(self, tmp_path):
        import json as _json

        path = tmp_path / "slow.jsonl"
        path.write_text(_json.dumps({"query": "S(x0)", "wall_ms": 1}) + "\n")
        code, output = run_cli("slowlog", str(path), "--json")
        assert code == 0
        assert _json.loads(output)[0]["query"] == "S(x0)"

    def test_env_var_supplies_the_path(self, tmp_path, monkeypatch):
        import json as _json

        path = tmp_path / "slow.jsonl"
        path.write_text(_json.dumps({"query": "S(x0)", "wall_ms": 1}) + "\n")
        monkeypatch.setenv("REPRO_SLOW_LOG", str(path))
        code, output = run_cli("slowlog")
        assert code == 0
        assert "S(x0)" in output

    def test_empty_log_reports_cleanly(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        path.write_text("")
        code, output = run_cli("slowlog", str(path))
        assert code == 0
        assert "no slow-query records" in output
