"""Tests for arrangement construction, incidence and adjacency.

Includes the paper's running example (Figures 1-4): a relation whose
hyperplane set is three lines in general position, whose arrangement has
exactly 7 two-dimensional faces, 9 one-dimensional faces and 3 vertices.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.hyperplane import Hyperplane
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.arrangement import (
    Arrangement,
    IncidenceGraph,
    build_arrangement,
    face_in_closure_of,
    faces_adjacent,
    hyperplanes_of_relation,
)
from repro.arrangement.adjacency import faces_incident
from repro.arrangement.incidence import EMPTY_FACE, FULL_FACE

F = Fraction


def triangle_relation() -> ConstraintRelation:
    """The running example: S a triangle; 𝕳(S) is 3 generic lines."""
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


@pytest.fixture(scope="module")
def triangle() -> Arrangement:
    return build_arrangement(triangle_relation())


class TestHyperplaneExtraction:
    def test_triangle_planes(self):
        planes = hyperplanes_of_relation(triangle_relation())
        assert len(planes) == 3

    def test_duplicate_atoms_collapse(self):
        r = ConstraintRelation.make(
            ("x",), parse_formula("(x < 1) | (2*x >= 2) | (x = 1)")
        )
        assert len(hyperplanes_of_relation(r)) == 1

    def test_trivial_atoms_ignored(self):
        r = ConstraintRelation.make(
            ("x",), parse_formula("x > 0 & 1 > 0")
        )
        assert len(hyperplanes_of_relation(r)) == 1


class TestRunningExample:
    """Figures 1-3: the face census of A(S)."""

    def test_face_census(self, triangle):
        census = triangle.face_count_by_dimension()
        assert census == {2: 7, 1: 9, 0: 3}

    def test_total_faces(self, triangle):
        assert len(triangle) == 19

    def test_vertices_are_triangle_corners(self, triangle):
        points = {f.sample for f in triangle.vertices}
        assert points == {(F(0), F(0)), (F(0), F(1)), (F(1), F(0))}

    def test_faces_partition_in_or_out(self, triangle):
        """Every face is contained in or disjoint from S (Section 3)."""
        relation = triangle_relation()
        inside = [f for f in triangle if f.in_relation]
        # Triangle interior + 3 edges + 3 vertices are inside.
        assert len(inside) == 7
        for face in triangle:
            poly = face.polyhedron(triangle.hyperplanes)
            witness = poly.relative_interior_point()
            assert witness is not None
            assert relation.contains(witness) == face.in_relation

    def test_locate(self, triangle):
        face = triangle.locate((F(1, 4), F(1, 4)))
        assert face.dimension == 2
        assert face.in_relation
        corner = triangle.locate((F(0), F(0)))
        assert corner.dimension == 0

    def test_face_formula_defines_face(self, triangle):
        relation = triangle_relation()
        for face in triangle:
            formula = face.defining_formula(
                triangle.hyperplanes, relation.variables
            )
            face_rel = ConstraintRelation.make(relation.variables, formula)
            assert face_rel.contains(face.sample)
            # A point of a different face never satisfies it.
            for other in triangle:
                if other.signs != face.signs:
                    assert not face_rel.contains(other.sample)


class TestIncidence:
    def test_vertex_neighbourhood(self, triangle):
        """Figure 4: each vertex sits on 2 lines, giving 4 incident edges."""
        graph = IncidenceGraph.build(triangle)
        for vertex in triangle.vertices:
            about = graph.neighbourhood(vertex.index)
            assert about["down"] == (EMPTY_FACE,)
            assert len(about["up"]) == 4
            assert all(isinstance(t, int) for t in about["up"])

    def test_top_faces_link_to_improper(self, triangle):
        graph = IncidenceGraph.build(triangle)
        for face in triangle.faces_of_dimension(2):
            assert graph.up[face.index][-1] == FULL_FACE

    def test_edges_have_consistent_directions(self, triangle):
        graph = IncidenceGraph.build(triangle)
        for lower, higher in graph.proper_edges():
            assert triangle.faces[lower].dimension + 1 == \
                triangle.faces[higher].dimension
            assert lower in graph.down[higher]

    def test_incidence_requires_dimension_gap_one(self, triangle):
        vertices = triangle.vertices
        top = triangle.faces_of_dimension(2)
        assert not faces_incident(vertices[0], top[0])

    def test_edge_count_positive(self, triangle):
        graph = IncidenceGraph.build(triangle)
        assert graph.edge_count() > len(triangle)


class TestAdjacency:
    def test_adjacency_symmetric(self, triangle):
        for f in triangle:
            for g in triangle:
                assert faces_adjacent(f, g) == faces_adjacent(g, f)

    def test_adjacent_faces_differ_in_dimension(self, triangle):
        """Paper: adjacent regions have strictly different dimensions."""
        for f in triangle:
            for g in triangle:
                if faces_adjacent(f, g):
                    assert f.dimension != g.dimension

    def test_not_self_adjacent(self, triangle):
        for f in triangle:
            assert not faces_adjacent(f, f)

    def test_closure_membership_matches_geometry(self, triangle):
        """f ⊆ closure(g) combinatorially iff f's sample is in cl(g)."""
        for f in triangle:
            for g in triangle:
                combinatorial = face_in_closure_of(f, g)
                geometric = (
                    g.polyhedron(triangle.hyperplanes)
                    .closure()
                    .contains(f.sample)
                )
                assert combinatorial == geometric

    def test_incident_implies_adjacent(self, triangle):
        """Any two incident faces are adjacent too (Section 4)."""
        for f in triangle:
            for g in triangle:
                if faces_incident(f, g):
                    assert faces_adjacent(f, g)


class TestDegenerateArrangements:
    def test_no_hyperplanes(self):
        r = ConstraintRelation.universe(("x", "y"))
        arrangement = build_arrangement(r)
        assert len(arrangement) == 1
        face = arrangement.faces[0]
        assert face.dimension == 2
        assert face.in_relation

    def test_single_hyperplane(self):
        r = ConstraintRelation.make(("x", "y"), parse_formula("x >= 0"))
        arrangement = build_arrangement(r)
        census = arrangement.face_count_by_dimension()
        assert census == {2: 2, 1: 1}

    def test_parallel_lines(self):
        r = ConstraintRelation.make(
            ("x", "y"), parse_formula("x >= 0 & x <= 1")
        )
        census = build_arrangement(r).face_count_by_dimension()
        assert census == {2: 3, 1: 2}

    def test_concurrent_lines(self):
        """Three lines through the origin: 1 vertex, 6 rays, 6 sectors."""
        r = ConstraintRelation.make(
            ("x", "y"),
            parse_formula("x >= 0 & y >= 0 & x = y"),
        )
        census = build_arrangement(r).face_count_by_dimension()
        assert census == {2: 6, 1: 6, 0: 1}

    def test_explicit_hyperplanes(self):
        planes = [Hyperplane.make([1, 0], 0), Hyperplane.make([0, 1], 0)]
        arrangement = build_arrangement(hyperplanes=planes, dimension=2)
        assert arrangement.face_count_by_dimension() == {2: 4, 1: 4, 0: 1}

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            build_arrangement(
                hyperplanes=[Hyperplane.make([1], 0)], dimension=2
            )
        with pytest.raises(GeometryError):
            build_arrangement()

    def test_one_dimensional_arrangement(self):
        r = ConstraintRelation.make(
            ("x",), parse_formula("(0 < x & x < 1) | x = 2")
        )
        arrangement = build_arrangement(r)
        # Points 0, 1, 2 split the line into 4 open intervals.
        assert arrangement.face_count_by_dimension() == {1: 4, 0: 3}
        inside = [f for f in arrangement if f.in_relation]
        assert len(inside) == 2


class TestArrangementProperties:
    @given(
        offsets=st.lists(st.integers(-3, 3), min_size=1, max_size=4,
                         unique=True),
    )
    @settings(max_examples=25, deadline=None)
    def test_lines_on_the_real_line(self, offsets):
        """n distinct points on ℝ give n vertices and n+1 intervals."""
        planes = [Hyperplane.make([1], off) for off in offsets]
        arrangement = build_arrangement(
            hyperplanes=planes, dimension=1
        )
        census = arrangement.face_count_by_dimension()
        assert census[0] == len(offsets)
        assert census[1] == len(offsets) + 1

    @given(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                      st.integers(-2, 2)).filter(lambda t: (t[0], t[1]) != (0, 0)),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_sign_vectors_unique_and_consistent(self, rows):
        planes = list({Hyperplane.make([a, b], c) for a, b, c in rows})
        arrangement = build_arrangement(hyperplanes=planes, dimension=2)
        signs_seen = set()
        for face in arrangement:
            assert face.signs not in signs_seen
            signs_seen.add(face.signs)
            assert face.contains(arrangement.hyperplanes, face.sample)

    @given(
        st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                      st.integers(-2, 2)).filter(lambda t: (t[0], t[1]) != (0, 0)),
            min_size=1,
            max_size=3,
            unique=True,
        ),
        st.tuples(
            st.fractions(min_value=-3, max_value=3, max_denominator=5),
            st.fractions(min_value=-3, max_value=3, max_denominator=5),
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_faces_partition_sampled_points(self, rows, point):
        """Every point lies in exactly one face."""
        planes = list({Hyperplane.make([a, b], c) for a, b, c in rows})
        arrangement = build_arrangement(hyperplanes=planes, dimension=2)
        containing = [
            f for f in arrangement
            if f.contains(arrangement.hyperplanes, point)
        ]
        assert len(containing) == 1
        assert containing[0] == arrangement.locate(point)
