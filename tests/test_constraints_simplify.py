"""Property tests for the pruned DNF algebra (repro.constraints.simplify).

The two complement strategies and the pruned product are compared
against plain pointwise semantics on rational sample grids — the ground
truth no representation trick can fool.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.atoms import Atom, Op
from repro.constraints.simplify import (
    cell_complement,
    disjunct_feasible,
    dnf_product,
    negate_dnf,
    prune_disjuncts,
)
from repro.constraints.terms import LinearTerm

F = Fraction

_OPS = [Op.LT, Op.LE, Op.EQ, Op.GE, Op.GT]


@st.composite
def atoms_1d(draw):
    coeff = draw(st.integers(1, 3))
    rhs = draw(st.integers(-3, 3))
    op = draw(st.sampled_from(_OPS))
    term = LinearTerm.make({"x": coeff}, -rhs)
    return Atom(term, op)


@st.composite
def dnfs_1d(draw):
    n_disjuncts = draw(st.integers(0, 4))
    return [
        tuple(
            draw(atoms_1d())
            for __ in range(draw(st.integers(1, 3)))
        )
        for __ in range(n_disjuncts)
    ]


GRID = [F(n, 2) for n in range(-8, 9)]


def dnf_holds(disjuncts, value: Fraction) -> bool:
    env = {"x": value}
    return any(
        all(atom.holds_at(env) for atom in disjunct)
        for disjunct in disjuncts
    )


class TestComplementStrategies:
    @given(dnfs_1d())
    @settings(max_examples=60, deadline=None)
    def test_negate_dnf_pointwise(self, disjuncts):
        negated = negate_dnf(disjuncts)
        for value in GRID:
            assert dnf_holds(negated, value) != dnf_holds(disjuncts, value)

    @given(dnfs_1d())
    @settings(max_examples=60, deadline=None)
    def test_cell_complement_pointwise(self, disjuncts):
        negated = cell_complement(disjuncts, ("x",))
        for value in GRID:
            assert dnf_holds(negated, value) != dnf_holds(disjuncts, value)

    @given(dnfs_1d())
    @settings(max_examples=40, deadline=None)
    def test_strategies_agree_semantically(self, disjuncts):
        by_product = negate_dnf(disjuncts)
        by_cells = cell_complement(disjuncts, ("x",))
        for value in GRID:
            assert dnf_holds(by_product, value) == \
                dnf_holds(by_cells, value)


class TestProductAndPrune:
    @given(dnfs_1d(), dnfs_1d())
    @settings(max_examples=50, deadline=None)
    def test_product_is_conjunction(self, left, right):
        product = dnf_product([left, right])
        for value in GRID:
            expected = dnf_holds(left, value) and dnf_holds(right, value)
            assert dnf_holds(product, value) == expected

    @given(dnfs_1d())
    @settings(max_examples=50, deadline=None)
    def test_prune_preserves_semantics(self, disjuncts):
        pruned = prune_disjuncts(disjuncts)
        for value in GRID:
            assert dnf_holds(pruned, value) == dnf_holds(disjuncts, value)

    @given(dnfs_1d())
    @settings(max_examples=50, deadline=None)
    def test_pruned_disjuncts_all_feasible(self, disjuncts):
        for disjunct in prune_disjuncts(disjuncts):
            assert disjunct_feasible(disjunct)

    def test_empty_product_is_true(self):
        assert dnf_product([]) == [()]

    def test_product_with_false_factor(self):
        some = (Atom(LinearTerm.make({"x": 1}), Op.GT),)
        assert dnf_product([[], [some]]) == []
        assert dnf_product([[some], []]) == []

    def test_negate_empty_dnf(self):
        assert negate_dnf([]) == [()]
        assert cell_complement([], ("x",)) == [()]

    def test_nullary_cell_complement(self):
        assert cell_complement([()], ()) == []
        assert cell_complement([], ()) == [()]
