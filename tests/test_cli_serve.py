"""The ``repro serve`` subcommand and observability-reset scoping.

``main()`` historically wiped all counters/spans/journal state on
every invocation.  For a long-lived server that is a bug — the
counters ARE the operational state ``GET /v1/stats`` reports — so the
reset is scoped to one-shot commands only.  These tests pin both
halves of that contract, plus a full in-process round trip of the
subcommand itself.
"""

from __future__ import annotations

import io
import re
import threading
import time

import pytest

from repro import cli
from repro.obs.metrics import get_registry


@pytest.fixture
def stub_command(monkeypatch):
    """Replace a CLI command with a stub that samples a probe counter."""

    def install(name: str) -> dict:
        seen: dict = {}

        def stub(args, out) -> int:
            seen["probe"] = get_registry().get("test.cli.probe")
            return 0

        monkeypatch.setitem(cli._COMMANDS, name, stub)
        return seen

    return install


def test_one_shot_command_resets_observability(stub_command):
    seen = stub_command("check")
    get_registry().counter("test.cli.probe").inc(5)
    assert cli.main(["check", "ignored.cdb"], out=io.StringIO()) == 0
    assert seen["probe"] == 0, "one-shot commands start pristine"


def test_serve_keeps_counters_alive(stub_command):
    """The regression: ``serve`` must NOT wipe live counters."""
    seen = stub_command("serve")
    get_registry().counter("test.cli.probe").inc(5)
    assert cli.main(["serve", "ignored.cdb"], out=io.StringIO()) == 0
    assert seen["probe"] == 5, (
        "a long-running server's counters must survive main()"
    )


def test_serve_is_self_tracing_and_long_running():
    assert "serve" in cli._SELF_TRACING
    assert "serve" in cli._LONG_RUNNING


def test_serve_round_trip(one_dim_file_path):
    """`repro serve` in-process: announce, answer queries, exit after
    ``--max-requests``."""
    from repro.server.loadgen import get_json, post_json

    buffer = io.StringIO()
    result: dict = {}

    def run() -> None:
        result["code"] = cli.main(
            ["serve", one_dim_file_path, "--port", "0",
             "--max-requests", "2"],
            out=buffer,
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30
    announced = ""
    while time.monotonic() < deadline:
        announced = buffer.getvalue()
        if "serving" in announced:
            break
        time.sleep(0.05)
    match = re.search(r"http://127\.0\.0\.1:(\d+)", announced)
    assert match, f"no announce line in {announced!r}"
    port = int(match.group(1))

    status, body = get_json(port, "/v1/healthz")
    assert status == 200 and body["status"] == "ok"
    status, body = post_json(port, "/v1/query",
                             {"query": "exists x. S(x)"})
    assert status == 200
    assert body["answer"]["truth"] is True

    thread.join(timeout=30)
    assert not thread.is_alive(), "--max-requests must stop the server"
    assert result["code"] == 0


@pytest.fixture
def one_dim_file_path(tmp_path) -> str:
    path = tmp_path / "one.cdb"
    path.write_text(
        "RELATION S (x0)\n"
        "(x0 >= 0 & x0 <= 1) | (x0 >= 2 & x0 <= 3)\n"
    )
    return str(path)
