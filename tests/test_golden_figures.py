"""Golden-file pins of the paper's worked examples.

The committed JSON files under ``tests/golden/`` freeze the combinatorial
content of the paper's figures (EXPERIMENTS.md: E1 triangle census, E8
Appendix-A decompositions) and a set of query truth values, so a future
refactor cannot silently drift from the paper.  On mismatch the diff is
the failure message; when a change is *intended*, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden_figures.py \
        --update-golden

and review the golden diff in the commit.
"""

import json
import pathlib

import pytest

from repro.arrangement.builder import build_arrangement
from repro.constraints.io import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.queries.connectivity import is_connected
from repro.regions.nc1 import decompose_nc1
from repro.workloads.generators import interval_chain

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def check_golden(name: str, payload: dict, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered)
    if not path.exists():
        pytest.fail(
            f"golden file {path.name} missing — generate it with "
            "pytest --update-golden and commit it"
        )
    assert json.loads(path.read_text()) == payload, (
        f"golden drift in {path.name}; if intended, regenerate with "
        "--update-golden and review the diff"
    )


def triangle() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


def pentagon() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"),
        parse_formula(
            "y >= 0 & 3*x - 2*y <= 12 & 3*x + 4*y <= 30 & "
            "3*x - 4*y >= -18 & 3*x + 2*y >= 0"
        ),
    )


def wedge() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y <= x & y >= -1")
    )


def test_e1_triangle_arrangement(update_golden):
    """Figure 4: the triangle's 7/9/3 census and full face table."""
    arrangement = build_arrangement(triangle())
    payload = {
        "hyperplanes": [str(h) for h in arrangement.hyperplanes],
        "census": {
            str(dim): count
            for dim, count in arrangement.face_count_by_dimension().items()
        },
        "total_faces": len(arrangement),
        "faces_in_relation": len(arrangement.faces_in_relation()),
        "faces": [
            {
                "signs": list(face.signs),
                "dim": face.dimension,
                "in_relation": face.in_relation,
            }
            for face in arrangement.faces
        ],
        "vertices": [
            [str(coordinate) for coordinate in face.sample]
            for face in arrangement.vertices
        ],
    }
    # The paper's numbers are load-bearing: guard them directly so a
    # stale golden file cannot hide a regression either.
    assert payload["census"] == {"2": 7, "1": 9, "0": 3}
    assert payload["faces_in_relation"] == 7
    check_golden("e1_triangle_arrangement", payload, update_golden)


@pytest.mark.parametrize(
    "name, factory, expected_census",
    [
        ("e8_pentagon_nc1", pentagon, {"2": 3, "1": 7, "0": 5}),
        ("e8_wedge_nc1", wedge, {"2": 3, "1": 7, "0": 4}),
    ],
)
def test_e8_nc1_decompositions(update_golden, name, factory,
                               expected_census):
    """Appendix A: the NC¹ censuses (wedge incl. the documented chord)."""
    regions = decompose_nc1(factory())
    census: dict[str, int] = {}
    kinds: dict[str, int] = {}
    for region in regions:
        census[str(region.dimension)] = census.get(
            str(region.dimension), 0
        ) + 1
        kinds[region.kind] = kinds.get(region.kind, 0) + 1
    payload = {
        "census": census,
        "kinds": dict(sorted(kinds.items())),
        "regions": len(regions),
        "unbounded": sum(1 for r in regions if not r.is_bounded()),
    }
    assert payload["census"] == expected_census
    check_golden(name, payload, update_golden)


def test_e4_query_verdicts(update_golden):
    """Conn and basic RegFO truth values on the interval chains."""
    from repro.engine import EngineCache, QueryEngine
    from repro.obs.metrics import MetricsRegistry

    touching = interval_chain(2)
    gapped = interval_chain(2, gap=True)
    engine = QueryEngine(
        touching, cache=EngineCache(metrics=MetricsRegistry())
    )
    answer = engine.evaluate("S(x) & x < 1")
    payload = {
        "conn_touching": is_connected(touching),
        "conn_gapped": is_connected(gapped),
        "conn_single": is_connected(interval_chain(1)),
        "exists_point": engine.truth("exists x. S(x)"),
        "all_below_three": engine.truth("forall x. S(x) -> x < 3"),
        "clipped_formula": str(answer.formula),
        "clipped_variables": list(answer.variables),
    }
    assert payload["conn_touching"] is True
    assert payload["conn_gapped"] is False
    check_golden("e4_query_verdicts", payload, update_golden)
