"""Tests for the NC¹ decomposition (Appendix A), incl. Figures 7-10.

The pentagon example must reproduce the paper's census exactly: three
2-dimensional inner regions, seven 1-dimensional regions (two inner),
five vertices.  For the unbounded example the literal Appendix-A rules
produce the paper's regions plus the chord between the two cube-boundary
clip vertices (the paper's narrative omits it); see EXPERIMENTS.md E8.
"""

from fractions import Fraction

import pytest

from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.regions.nc1 import (
    NC1Decomposition,
    _icube_constraints,
    _is_bounded_by_cube_test,
    _up_pairs,
    decompose_disjunct,
    decompose_nc1,
)

F = Fraction


def pentagon_relation() -> ConstraintRelation:
    """Figure 9's bounded polytope, instantiated with rational vertices
    (0,0), (4,0), (6,3), (2,6), (-2,3)."""
    return ConstraintRelation.make(
        ("x", "y"),
        parse_formula(
            "y >= 0 & 3*x - 2*y <= 12 & 3*x + 4*y <= 30 & "
            "3*x - 4*y >= -18 & 3*x + 2*y >= 0"
        ),
    )


def wedge_relation() -> ConstraintRelation:
    """Figure 10's unbounded polyhedron, instantiated as
    {x >= 0, y <= x, y >= -1} with vertices (0,0) and (0,-1)."""
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y <= x & y >= -1")
    )


@pytest.fixture(scope="module")
def pentagon_regions():
    [poly] = pentagon_relation().polyhedra()
    return decompose_disjunct(poly)


@pytest.fixture(scope="module")
def wedge_regions():
    [poly] = wedge_relation().polyhedra()
    return decompose_disjunct(poly)


def census(regions):
    result: dict[int, int] = {}
    for region in regions:
        result[region.dimension] = result.get(region.dimension, 0) + 1
    return result


class TestPentagonExample:
    """Figures 7-8: the worked bounded decomposition."""

    def test_census_matches_paper(self, pentagon_regions):
        assert census(pentagon_regions) == {2: 3, 1: 7, 0: 5}

    def test_inner_outer_split(self, pentagon_regions):
        one_dim = [r for r in pentagon_regions if r.dimension == 1]
        inner = [r for r in one_dim if r.kind == "inner"]
        outer = [r for r in one_dim if r.kind == "outer"]
        assert len(inner) == 2  # the two diagonals from p_low
        assert len(outer) == 5  # the five boundary edges

    def test_two_dim_regions_are_inner(self, pentagon_regions):
        assert all(
            r.kind == "inner" for r in pentagon_regions if r.dimension == 2
        )

    def test_vertices_are_pentagon_corners(self, pentagon_regions):
        points = {
            r.sample_point() for r in pentagon_regions if r.dimension == 0
        }
        assert points == {
            (F(0), F(0)),
            (F(4), F(0)),
            (F(6), F(3)),
            (F(2), F(6)),
            (F(-2), F(3)),
        }

    def test_all_regions_inside_closure(self, pentagon_regions):
        [poly] = pentagon_relation().polyhedra()
        closed = poly.closure()
        for region in pentagon_regions:
            assert closed.contains(region.sample_point())

    def test_every_relation_point_covered(self, pentagon_regions):
        """Every point of ψ lies in at least one region (Appendix A)."""
        relation = pentagon_relation()
        probes = [
            (F(1), F(1)),
            (F(0), F(0)),       # vertex
            (F(2), F(0)),       # boundary edge
            (F(-1), F(5, 2)),   # on edge P4P5
            (F(3), F(3)),       # interior
        ]
        for probe in probes:
            assert relation.contains(probe)
            assert any(r.contains(probe) for r in pentagon_regions)

    def test_regions_disjoint_for_single_polytope(self, pentagon_regions):
        """For one convex polytope the fan + boundary regions partition."""
        probes = [
            (F(1), F(1)), (F(2), F(3)), (F(0), F(0)), (F(2), F(0)),
            (F(5, 2), F(9, 2)),
        ]
        for probe in probes:
            holders = [r for r in pentagon_regions if r.contains(probe)]
            assert len(holders) <= 1 or probe


class TestWedgeExample:
    """Figure 10: the worked unbounded decomposition."""

    def test_unbounded_detected(self):
        [poly] = wedge_relation().polyhedra()
        assert not _is_bounded_by_cube_test(poly, F(1))

    def test_pentagon_bounded_detected(self):
        [poly] = pentagon_relation().polyhedra()
        assert _is_bounded_by_cube_test(poly, F(6))

    def test_up_pairs(self):
        [poly] = wedge_relation().polyhedra()
        clip = poly.with_constraints(_icube_constraints(2, F(1)))
        pairs = _up_pairs(poly, clip.vertices(), F(1))
        assert len(pairs) == 2

    def test_census(self, wedge_regions):
        """Paper lists {2:3, 1:6, 0:4}; the literal rules add the cube
        chord, giving one extra bounded 1-dimensional region."""
        assert census(wedge_regions) == {2: 3, 1: 7, 0: 4}

    def test_unbounded_region_kinds(self, wedge_regions):
        rays = [r for r in wedge_regions if r.kind == "ray"]
        hulls = [r for r in wedge_regions if r.kind == "ray-hull"]
        assert len(rays) == 2
        assert len(hulls) == 1
        assert all(not r.is_bounded() for r in rays + hulls)
        assert all(r.dimension == 1 for r in rays)
        assert hulls[0].dimension == 2

    def test_far_points_covered_by_unbounded_regions(self, wedge_regions):
        relation = wedge_relation()
        far = (F(100), F(50))
        assert relation.contains(far)
        holders = [r for r in wedge_regions if r.contains(far)]
        assert holders
        assert all(not r.is_bounded() for r in holders)

    def test_rays_inside_closure(self, wedge_regions):
        [poly] = wedge_relation().polyhedra()
        closed = poly.closure()
        for region in wedge_regions:
            if not region.is_bounded():
                assert closed.contains(region.sample_point())


class TestNC1Decomposition:
    def test_union_over_disjuncts(self):
        relation = ConstraintRelation.make(
            ("x", "y"),
            parse_formula(
                "(0 <= x & x <= 1 & 0 <= y & y <= 1) | "
                "(2 <= x & x <= 3 & 0 <= y & y <= 1)"
            ),
        )
        regions = decompose_nc1(relation)
        # Two unit squares, each: 4 triangles? No - square fan from corner:
        # 2 triangles + diagonal + 4 edges + 4 vertices = 11 regions each.
        assert len(regions) == 22
        dims = census(regions)
        assert dims == {2: 4, 1: 10, 0: 8}

    def test_shared_regions_dedupe(self):
        """Two disjuncts describing the same square contribute once."""
        relation = ConstraintRelation.make(
            ("x", "y"),
            parse_formula(
                "(0 <= x & x <= 1 & 0 <= y & y <= 1) | "
                "(0 <= 2*x & x <= 1 & 0 <= y & 2*y <= 2)"
            ),
        )
        regions = decompose_nc1(relation)
        assert len(regions) == 11

    def test_decomposition_object(self):
        decomposition = NC1Decomposition(pentagon_relation())
        assert len(decomposition) == 15
        assert decomposition.count_by_dimension() == {2: 3, 1: 7, 0: 5}
        zero = decomposition.zero_dimensional()
        assert [r.dimension for r in zero] == [0] * 5
        # Canonical order: samples of 0-dim regions ascend lexicographically.
        samples = [r.sample_point() for r in zero]
        assert samples == sorted(samples)

    def test_indices_canonical(self):
        decomposition = NC1Decomposition(pentagon_relation())
        assert [r.index for r in decomposition.regions] == list(range(15))

    def test_adjacency_vertex_edge(self):
        decomposition = NC1Decomposition(pentagon_relation())
        vertex = next(
            r for r in decomposition
            if r.dimension == 0 and r.sample_point() == (F(0), F(0))
        )
        edges = [
            r for r in decomposition
            if r.dimension == 1
            and decomposition.adjacent(vertex.index, r.index)
        ]
        # (0,0) bounds two boundary edges; it is p_low-adjacent only if
        # p_low == (0,0), which it is not (p_low = (-2,3)).
        assert len(edges) == 2

    def test_region_subset_of_relation(self):
        decomposition = NC1Decomposition(pentagon_relation())
        for region in decomposition:
            assert decomposition.region_subset_of_relation(region.index)

    def test_defining_formula_roundtrip(self):
        decomposition = NC1Decomposition(wedge_relation())
        for region in decomposition.regions[:6]:
            formula = region.defining_formula(("x", "y"))
            assert formula.is_quantifier_free()
            rel = ConstraintRelation.make(("x", "y"), formula)
            sample = region.sample_point()
            assert rel.contains(sample)
            # A point far outside the wedge is in no region.
            assert not rel.contains((F(-50), F(50)))

    def test_empty_disjunct_contributes_nothing(self):
        relation = ConstraintRelation.make(
            ("x",), parse_formula("(x > 0 & x < 0) | (0 <= x & x <= 1)")
        )
        regions = decompose_nc1(relation)
        # Segment [0,1]: open segment + 2 vertices.
        assert census(regions) == {1: 1, 0: 2}

    def test_point_relation(self):
        relation = ConstraintRelation.make(
            ("x", "y"), parse_formula("x = 1 & y = 2")
        )
        regions = decompose_nc1(relation)
        assert census(regions) == {0: 1}
        assert regions[0].sample_point() == (F(1), F(2))
