"""Tests for the topological operators, incl. ε-adjacency validation."""

from fractions import Fraction

import pytest

from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.constraints.topology import (
    boundary,
    closure,
    interior,
    is_closed,
    is_open,
)

F = Fraction


def rel(text: str, variables=("x",)) -> ConstraintRelation:
    return ConstraintRelation.make(tuple(variables), parse_formula(text))


class TestClosure:
    def test_open_interval(self):
        closed = closure(rel("0 < x & x < 1"))
        assert closed.contains((F(0),))
        assert closed.contains((F(1),))
        assert closed.contains((F(1, 2),))
        assert not closed.contains((F(2),))

    def test_closed_set_fixed(self):
        segment = rel("0 <= x & x <= 1")
        assert closure(segment).equivalent(segment)
        assert is_closed(segment)

    def test_idempotent(self):
        s = rel("(0 < x & x < 1) | x = 3")
        once = closure(s)
        assert closure(once).equivalent(once)

    def test_two_dimensional(self):
        open_square = rel(
            "0 < x & x < 1 & 0 < y & y < 1", variables=("x", "y")
        )
        closed = closure(open_square)
        assert closed.contains((F(0), F(0)))
        assert closed.contains((F(1), F(1, 2)))
        assert not closed.contains((F(2), F(0)))

    def test_isolated_point_stays(self):
        point = rel("x = 5")
        assert closure(point).equivalent(point)


class TestInterior:
    def test_closed_interval(self):
        inner = interior(rel("0 <= x & x <= 1"))
        assert inner.contains((F(1, 2),))
        assert not inner.contains((F(0),))
        assert not inner.contains((F(1),))

    def test_open_set_fixed(self):
        s = rel("0 < x & x < 1")
        assert interior(s).equivalent(s)
        assert is_open(s)

    def test_point_has_empty_interior(self):
        assert interior(rel("x = 5")).is_empty()

    def test_duality_with_closure(self):
        """interior(S) = ¬closure(¬S)."""
        s = rel("(0 <= x & x < 1) | x = 2")
        lhs = interior(s)
        rhs = closure(s.complement()).complement()
        assert lhs.equivalent(rhs)


class TestBoundary:
    def test_interval_boundary_is_endpoints(self):
        edge = boundary(rel("0 < x & x < 1"))
        assert edge.contains((F(0),))
        assert edge.contains((F(1),))
        assert not edge.contains((F(1, 2),))
        assert not edge.contains((F(2),))

    def test_boundary_shared_by_complement(self):
        s = rel("x < 3")
        assert boundary(s).equivalent(boundary(s.complement()))

    def test_whole_space_has_no_boundary(self):
        assert boundary(ConstraintRelation.universe(("x",))).is_empty()


class TestEpsilonAdjacency:
    """Definition 4.1's ε-neighbourhood adjacency, validated against the
    sign-vector implementation: two faces are adjacent iff one meets the
    closure of the other."""

    @pytest.mark.parametrize("text,variables", [
        ("(0 < x0 & x0 < 1) | x0 = 3", ("x0",)),
        ("x0 >= 0 & x1 >= 0 & x0 + x1 <= 1", ("x0", "x1")),
    ])
    def test_adjacency_matches_epsilon_definition(self, text, variables):
        from repro.constraints.database import ConstraintDatabase
        from repro.twosorted.structure import RegionExtension

        relation = rel(text, variables)
        extension = RegionExtension.build(
            ConstraintDatabase.single(relation)
        )
        regions = extension.regions
        as_relations = [r.as_relation(variables) for r in regions]
        closures = [closure(r) for r in as_relations]
        for left in regions:
            for right in regions:
                if left.index >= right.index:
                    continue
                epsilon_adjacent = (
                    not as_relations[left.index]
                    .intersect(closures[right.index]).is_empty()
                    or not as_relations[right.index]
                    .intersect(closures[left.index]).is_empty()
                )
                assert epsilon_adjacent == extension.adjacent(
                    left.index, right.index
                ), (left.index, right.index)
