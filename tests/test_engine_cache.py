"""Tests for repro.engine: fingerprints, the cross-query cache and
the QueryEngine entry point.

The satellite criteria: structurally equal databases hit the cache; a
mutated formula or a renamed relation misses; invalidation drops the
entries; the deprecated one-shot helpers still work and agree with the
engine.
"""

import warnings

import pytest

from repro.errors import EvaluationError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.engine import (
    EngineCache,
    QueryEngine,
    database_fingerprint,
    relation_fingerprint,
    shared_cache,
)
from repro.logic.parser import parse_query
from repro.obs.metrics import MetricsRegistry


def interval_db(text: str = "(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)",
                name: str = "S") -> ConstraintDatabase:
    return ConstraintDatabase.make({
        name: ConstraintRelation.make(("x0",), parse_formula(text)),
    })


def fresh_cache() -> EngineCache:
    return EngineCache(metrics=MetricsRegistry())


class TestFingerprints:
    def test_structurally_equal_databases_share_fingerprint(self):
        assert database_fingerprint(interval_db()) == \
            database_fingerprint(interval_db())

    def test_mutated_formula_changes_fingerprint(self):
        original = interval_db()
        mutated = interval_db("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 4)")
        assert database_fingerprint(original) != \
            database_fingerprint(mutated)

    def test_renamed_relation_changes_fingerprint(self):
        assert database_fingerprint(interval_db(name="S")) != \
            database_fingerprint(interval_db(name="T"))

    def test_schema_matters(self):
        left = ConstraintRelation.make(("x0",), parse_formula("x0 > 0"))
        right = ConstraintRelation.make(("x1",), parse_formula("x1 > 0"))
        assert relation_fingerprint(left) != relation_fingerprint(right)

    def test_fingerprint_is_cached_on_the_database(self):
        database = interval_db()
        first = database_fingerprint(database)
        assert database.__dict__.get("_fingerprint") == first
        assert database_fingerprint(database) == first


class TestEngineCache:
    def test_same_database_hits(self):
        cache = fresh_cache()
        first = cache.extension(interval_db())
        second = cache.extension(interval_db())   # distinct object
        assert second is first
        stats = cache.stats()
        assert stats["extension_hits"] == 1
        assert stats["extension_misses"] == 1

    def test_mutated_formula_misses(self):
        cache = fresh_cache()
        cache.extension(interval_db())
        cache.extension(interval_db("(0 < x0 & x0 < 1)"))
        stats = cache.stats()
        assert stats["extension_hits"] == 0
        assert stats["extension_misses"] == 2

    def test_renamed_relation_misses(self):
        cache = fresh_cache()
        cache.extension(interval_db(name="S"), spatial_name="S")
        cache.extension(interval_db(name="T"), spatial_name="T")
        stats = cache.stats()
        assert stats["extension_hits"] == 0
        assert stats["extension_misses"] == 2

    def test_decomposition_is_part_of_the_key(self):
        cache = fresh_cache()
        arr = cache.extension(interval_db(), "arrangement")
        nc1 = cache.extension(interval_db(), "nc1")
        assert arr is not nc1
        assert cache.stats()["extension_misses"] == 2

    def test_arrangement_reused_across_databases(self):
        # Two different databases sharing the spatial relation S reuse
        # the Theorem-3.1 arrangement even though the extensions differ.
        cache = fresh_cache()
        shared = "(0 < x0 & x0 < 1)"
        first = ConstraintDatabase.make({
            "S": ConstraintRelation.make(
                ("x0",), parse_formula(shared)
            ),
        })
        second = ConstraintDatabase.make({
            "S": ConstraintRelation.make(
                ("x0",), parse_formula(shared)
            ),
            "Zone": ConstraintRelation.make(
                ("x0",), parse_formula("x0 > 5")
            ),
        })
        assert database_fingerprint(first) != database_fingerprint(second)
        cache.extension(first)
        cache.extension(second)
        stats = cache.stats()
        assert stats["extension_misses"] == 2
        assert stats["arrangement_hits"] == 1

    def test_invalidate_all(self):
        cache = fresh_cache()
        cache.extension(interval_db())
        assert len(cache) > 0
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats()["invalidations"] > 0

    def test_invalidate_one_database(self):
        cache = fresh_cache()
        keep = interval_db("(0 < x0 & x0 < 1)")
        drop = interval_db()
        cache.extension(keep)
        cache.extension(drop)
        cache.invalidate(drop)
        # keep is still warm, drop is gone.
        cache.extension(keep)
        stats = cache.stats()
        assert stats["extension_hits"] == 1
        cache.extension(drop)
        assert cache.stats()["extension_misses"] == 3

    def test_lru_eviction(self):
        cache = EngineCache(capacity=1, metrics=MetricsRegistry())
        cache.extension(interval_db("0 < x0 & x0 < 1"))
        cache.extension(interval_db("1 < x0 & x0 < 2"))
        assert cache.stats()["extensions_cached"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EngineCache(capacity=0)


class TestQueryEngine:
    def test_truth_and_evaluate(self):
        engine = QueryEngine(interval_db(), cache=fresh_cache())
        assert engine.truth("exists x. S(x)")
        answer = engine.evaluate("S(x) & x < 1")
        assert answer.variables == ("x",)
        assert not answer.is_empty()

    def test_accepts_parsed_formulas(self):
        engine = QueryEngine(interval_db(), cache=fresh_cache())
        assert engine.truth(parse_query("exists x. S(x)"))

    def test_rejects_free_region_vars(self):
        engine = QueryEngine(interval_db(), cache=fresh_cache())
        with pytest.raises(EvaluationError):
            engine.evaluate("sub(R, S)")

    def test_truth_rejects_free_element_vars(self):
        engine = QueryEngine(interval_db(), cache=fresh_cache())
        with pytest.raises(EvaluationError):
            engine.truth("S(x)")

    def test_two_engines_share_the_cache(self):
        cache = fresh_cache()
        first = QueryEngine(interval_db(), cache=cache)
        second = QueryEngine(interval_db(), cache=cache)
        first.truth("exists x. S(x)")
        second.truth("exists x. S(x)")
        assert second.extension is first.extension
        assert cache.stats()["extension_hits"] == 1

    def test_invalidate_resets_the_engine(self):
        cache = fresh_cache()
        engine = QueryEngine(interval_db(), cache=cache)
        engine.truth("exists x. S(x)")
        engine.invalidate()
        assert len(cache) == 0
        engine.truth("exists x. S(x)")   # rebuilds without error
        assert cache.stats()["extension_misses"] == 2

    def test_stats_shape(self):
        engine = QueryEngine(interval_db(), cache=fresh_cache())
        engine.truth("exists x. S(x)")
        stats = engine.stats()
        assert "cache" in stats
        assert stats["evaluator"]["evaluations"] > 0
        assert stats["regions"] == 9

    def test_agrees_with_deprecated_helpers(self):
        # The shims are deprecated (they warn once per process; see
        # test_deprecation_shims.py) but must stay answer-equivalent to
        # the engine until they are removed.
        from repro.logic.evaluator import evaluate_query, query_truth

        database = interval_db()
        engine = QueryEngine(database, cache=fresh_cache())
        query = "forall x. S(x) -> x < 3"
        relational = "S(x) & x < 1"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from_helper_truth = query_truth(parse_query(query), database)
            from_helper = evaluate_query(parse_query(relational), database)
        assert engine.truth(query) == from_helper_truth
        assert engine.evaluate(relational).equivalent(from_helper)

    def test_shared_cache_is_the_default(self):
        engine = QueryEngine(interval_db())
        assert engine.cache is shared_cache()

    def test_repr_mentions_fingerprint(self):
        engine = QueryEngine(interval_db(), cache=fresh_cache())
        assert engine.fingerprint[:12] in repr(engine)
