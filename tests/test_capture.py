"""Tests for the Theorem 6.4 toolkit: machines, encoding, capture runs."""

from fractions import Fraction

import pytest

from repro.errors import CaptureError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.capture.compiler import (
    capture_run,
    index_of_tuple,
    successor,
    tuple_of_index,
)
from repro.capture.encoding import encode_database, encode_rational
from repro.capture.machine import (
    BLANK,
    TuringMachine,
    machine_contains_one,
    machine_first_symbol_is,
    machine_first_vertex_in_s,
    machine_parity_of_ones,
)
from repro.twosorted.structure import RegionExtension

F = Fraction


def db(text: str, arity: int) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


class TestTuringMachine:
    def test_first_symbol_machine(self):
        machine = machine_first_symbol_is("1")
        assert machine.accepts("101", 10)
        assert not machine.accepts("011", 10)

    def test_parity_machine(self):
        machine = machine_parity_of_ones()
        assert machine.accepts("1100", 20)
        assert not machine.accepts("1000", 20)
        assert machine.accepts("", 5)

    def test_contains_one(self):
        machine = machine_contains_one()
        assert machine.accepts("0001", 20)
        assert not machine.accepts("000", 20)

    def test_trace_is_deterministic(self):
        machine = machine_parity_of_ones()
        first = list(machine.trace("11", 10))
        second = list(machine.trace("11", 10))
        assert first == second
        assert first[0].time == 0
        assert first[-1].state == "accept"

    def test_nontermination_detected(self):
        spinner = TuringMachine.make(
            {("s", BLANK): ("s", BLANK, 0)}, "s"
        )
        with pytest.raises(CaptureError):
            spinner.run(BLANK, 5)

    def test_bad_move_rejected(self):
        with pytest.raises(CaptureError):
            TuringMachine.make({("s", "0"): ("s", "0", 2)}, "s")

    def test_input_symbols_validated(self):
        machine = machine_contains_one()
        with pytest.raises(CaptureError):
            machine.accepts("abc", 10)


class TestTupleArithmetic:
    def test_roundtrip(self):
        for base in (2, 3, 5):
            for arity in (1, 2, 3):
                for value in range(base**arity):
                    digits = tuple_of_index(value, base, arity)
                    assert index_of_tuple(digits, base) == value

    def test_successor_walks_the_space(self):
        base, arity = 3, 2
        current = tuple_of_index(0, base, arity)
        seen = [current]
        while True:
            nxt = successor(current, base)
            if nxt is None:
                break
            seen.append(nxt)
            current = nxt
        assert len(seen) == base**arity
        assert seen == sorted(seen)

    def test_overflow_rejected(self):
        with pytest.raises(CaptureError):
            tuple_of_index(8, 2, 3)


class TestEncoding:
    def test_encode_rational(self):
        assert encode_rational(F(3)) == "11/1"
        assert encode_rational(F(-5, 2)) == "-101/10"
        assert encode_rational(F(0)) == "0/1"

    def test_encoding_deterministic(self):
        database = db("(0 < x0 & x0 < 1) | x0 = 3", 1)
        ext_a = RegionExtension.build(database)
        ext_b = RegionExtension.build(database)
        assert encode_database(ext_a) == encode_database(ext_b)

    def test_encoding_reflects_membership(self):
        inside = db("0 <= x0 & x0 <= 1", 1)   # endpoints in S
        outside = db("0 < x0 & x0 < 1", 1)     # endpoints not in S
        word_in = encode_database(RegionExtension.build(inside))
        word_out = encode_database(RegionExtension.build(outside))
        assert word_in != word_out
        # Same geometry, so same coordinates appear in both.
        assert word_in.split("#")[0].rsplit("|", 1)[0] == \
            word_out.split("#")[0].rsplit("|", 1)[0]

    def test_encoding_distinguishes_databases(self):
        a = encode_database(RegionExtension.build(db("x0 = 1", 1)))
        b = encode_database(RegionExtension.build(db("x0 = 2", 1)))
        assert a != b


class TestCaptureRuns:
    DATABASES = [
        db("0 < x0 & x0 < 1", 1),
        db("(0 <= x0 & x0 <= 1) | x0 = 3", 1),
        db("x0 >= 0 & x1 >= 0 & x0 + x1 <= 1", 2),
    ]

    MACHINES = [
        machine_first_symbol_is("1"),
        machine_parity_of_ones(),
        machine_contains_one(),
    ]

    def test_inductive_agrees_with_direct(self):
        """The executable content of Theorem 6.4."""
        for database in self.DATABASES:
            for machine in self.MACHINES:
                result = capture_run(machine, database)
                assert result.agree, (
                    f"disagreement for {machine.start_state} on "
                    f"{result.word[:30]}..."
                )

    def test_result_metadata(self):
        result = capture_run(machine_contains_one(), self.DATABASES[0])
        assert result.region_count == 5
        assert result.region_count ** result.arity >= len(result.word)
        assert result.inductive_steps <= result.time_bound

    def test_membership_sensitive_machine(self):
        # The first 0-dim region of (0,1) is the vertex 0, not in S; its
        # membership bit is 0.  For [0,1] it is 1.  A machine scanning
        # for a 1 distinguishes them... both words contain 1s in the
        # coordinates, so use the first-symbol machine on crafted words
        # instead: just verify the capture answers differ across the two
        # databases for the parity machine iff the direct runs differ.
        closed = db("0 <= x0 & x0 <= 1", 1)
        open_ = db("0 < x0 & x0 < 1", 1)
        machine = machine_parity_of_ones()
        r_closed = capture_run(machine, closed)
        r_open = capture_run(machine, open_)
        assert r_closed.agree and r_open.agree

    def test_explicit_arity(self):
        result = capture_run(
            machine_contains_one(), self.DATABASES[0], arity=3
        )
        assert result.arity == 3
        assert result.agree

    def test_time_bound_too_small(self):
        with pytest.raises(CaptureError):
            capture_run(
                machine_parity_of_ones(),
                self.DATABASES[0],
                arity=1,
                time_bound=2,
            )

    def test_nc1_decomposition_capture(self):
        result = capture_run(
            machine_contains_one(),
            db("0 <= x0 & x0 <= 1", 1),
            decomposition="nc1",
        )
        assert result.agree

    def test_semantic_machine_reads_membership(self):
        """A machine deciding an actual database property — 'the first
        vertex belongs to S' — from the encoding word."""
        machine = machine_first_vertex_in_s()
        cases = [
            ("0 <= x0 & x0 <= 1", True),    # vertex 0 in S
            ("0 < x0 & x0 < 1", False),     # vertex 0 not in S
            ("(0 < x0 & x0 <= 1) | x0 = 2", False),
            ("(0 <= x0 & x0 < 1) | x0 = 2", True),
        ]
        for text, expected in cases:
            database = db(text, 1)
            result = capture_run(machine, database)
            assert result.agree, text
            assert result.direct_accepts is expected, text
            # Cross-check against the region extension's own view.
            extension = RegionExtension.build(database)
            zero_dim = extension.zero_dimensional_regions()
            ground = extension.region_subset_of_spatial(
                zero_dim[0].index
            )
            assert result.direct_accepts == ground, text
