"""Tests for the connected-component (non-boolean) query."""

from fractions import Fraction

import pytest

from repro.errors import EvaluationError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.queries.reachability import (
    connected_component,
    reachable_region_indices,
)
from repro.twosorted.structure import RegionExtension

F = Fraction


def db(text: str, arity: int = 1) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


TWO_PIECES = db("(0 <= x0 & x0 <= 1) | (2 <= x0 & x0 <= 3)")


class TestConnectedComponent:
    def test_component_of_first_piece(self):
        component = connected_component(TWO_PIECES, (F(1, 2),))
        expected = ConstraintRelation.make(
            ("x0",), parse_formula("0 <= x0 & x0 <= 1")
        )
        assert component.equivalent(expected)

    def test_component_of_second_piece(self):
        component = connected_component(TWO_PIECES, (F(5, 2),))
        expected = ConstraintRelation.make(
            ("x0",), parse_formula("2 <= x0 & x0 <= 3")
        )
        assert component.equivalent(expected)

    def test_point_outside_s_gives_empty(self):
        component = connected_component(TWO_PIECES, (F(3, 2),))
        assert component.is_empty()

    def test_connected_relation_returns_everything(self):
        database = db("0 <= x0 & x0 <= 3")
        component = connected_component(database, (F(1),))
        assert component.equivalent(database.spatial)

    def test_touching_pieces_merge(self):
        database = db("(0 <= x0 & x0 <= 1) | (1 <= x0 & x0 <= 2)")
        component = connected_component(database, (F(1, 2),))
        expected = ConstraintRelation.make(
            ("x0",), parse_formula("0 <= x0 & x0 <= 2")
        )
        assert component.equivalent(expected)

    def test_two_dimensional_component(self):
        database = db(
            "(0 <= x0 & x0 <= 1 & 0 <= x1 & x1 <= 1) | "
            "(3 <= x0 & x0 <= 4 & 0 <= x1 & x1 <= 1)",
            arity=2,
        )
        component = connected_component(database, (F(1, 2), F(1, 2)))
        assert component.contains((F(1), F(1)))
        assert not component.contains((F(7, 2), F(1, 2)))

    def test_arity_mismatch(self):
        with pytest.raises(EvaluationError):
            connected_component(TWO_PIECES, (F(0), F(0)))


class TestReachableIndices:
    def test_start_region_included_when_in_s(self):
        extension = RegionExtension.build(TWO_PIECES)
        start = extension.decomposition.regions_containing((F(1, 2),))[0]
        reached = reachable_region_indices(extension, start.index)
        assert start.index in reached
        # Every reached region is inside S.
        for index in reached:
            assert extension.region_subset_of_spatial(index)

    def test_start_outside_s_reaches_nothing(self):
        extension = RegionExtension.build(TWO_PIECES)
        gap = extension.decomposition.regions_containing((F(3, 2),))[0]
        assert reachable_region_indices(extension, gap.index) == frozenset()
