"""Tests for EXPLAIN / EXPLAIN ANALYZE (repro.explain + the CLI).

The load-bearing contract: EXPLAIN never perturbs engine or store
state, and EXPLAIN ANALYZE's per-node ``self_counters`` sum *exactly*
to the run's totals (the synthetic ``other`` node absorbs bookkeeping),
so the plan tree is a lossless decomposition of the profile.
"""

import io
import json

import pytest

from repro.cli import main
from repro.constraints.database import ConstraintDatabase
from repro.constraints.io import save_database
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.engine import QueryEngine
from repro.explain import PROFILE_COUNTERS, PlanNode
from repro.logic.parser import parse_query
from repro.obs import reset_all
from repro.queries.connectivity import connectivity_query_lfp


@pytest.fixture(autouse=True)
def _clean_slate():
    from repro.engine import invalidate_cache
    from repro.geometry.simplex import clear_feasibility_cache

    reset_all()
    invalidate_cache()
    clear_feasibility_cache()
    yield
    reset_all()
    invalidate_cache()
    clear_feasibility_cache()


def one_dim_database() -> ConstraintDatabase:
    return ConstraintDatabase.make({
        "S": ConstraintRelation.make(
            ("x0",),
            parse_formula("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"),
        )
    })


def self_counter_sums(plan: PlanNode) -> dict:
    sums: dict = {}
    for node in plan.walk():
        if node.cost:
            for name, value in node.cost.get("self_counters", {}).items():
                sums[name] = sums.get(name, 0) + value
    return sums


class TestCompile:
    def test_plan_shape_and_labels(self):
        engine = QueryEngine(one_dim_database())
        result = engine.explain("exists x0. S(x0)")
        assert not result.analyzed
        assert result.language == "RegFO"
        assert result.totals is None
        root = result.plan
        assert root.op == "query"
        assert root.detail["relations"] == ["S"]
        assert [child.op for child in root.children] == \
            ["setup", "ExistsElem", "optimizer"]
        atom = root.children[1].children[0]
        assert atom.op == "RelationAtom"
        assert atom.detail["relation"] == "S"

    def test_cold_predictions(self):
        engine = QueryEngine(one_dim_database())
        plan = engine.explain("exists x0. S(x0)").plan
        setup = plan.children[0]
        assert setup.detail["extension"] == "build"
        assert setup.detail["arrangement"] == "build"
        assert plan.detail["result"] == "compute"

    def test_warm_predictions_and_no_perturbation(self):
        engine = QueryEngine(one_dim_database())
        cold = engine.explain("exists x0. S(x0)")
        engine.evaluate("exists x0. S(x0)")
        stats_before = engine.cache.stats()
        warm = engine.explain("exists x0. S(x0)")
        # Warm state is visible...
        assert warm.plan.children[0].detail["extension"] == "memory"
        # ...and peeking moved no cache counters.
        assert engine.cache.stats() == stats_before
        assert cold.plan.children[0].detail["extension"] == "build"

    def test_store_prediction(self, tmp_path):
        engine = QueryEngine(
            one_dim_database(), cache_dir=str(tmp_path / "store")
        )
        engine.evaluate("exists x0. S(x0)")
        fresh = QueryEngine(
            one_dim_database(), cache_dir=str(tmp_path / "store")
        )
        plan = fresh.explain("exists x0. S(x0)").plan
        assert plan.detail["result"] == "store"

    def test_fixpoint_node_detail(self):
        query = connectivity_query_lfp(1)
        engine = QueryEngine(one_dim_database())
        result = engine.explain(query)
        assert result.language == "RegLFP"
        fixpoints = [
            node for node in result.plan.walk() if node.op == "Fixpoint"
        ]
        assert len(fixpoints) == 1
        assert fixpoints[0].detail["kind"] == "lfp"


class TestAnalyze:
    def test_self_counters_sum_exactly_to_totals(self):
        engine = QueryEngine(one_dim_database())
        result = engine.explain(
            "exists x0. S(x0) & x0 < 2", analyze=True
        )
        assert result.analyzed
        totals = result.totals["counters"]
        sums = self_counter_sums(result.plan)
        for name in PROFILE_COUNTERS:
            assert sums.get(name, 0) == totals.get(name, 0), name

    def test_connectivity_lfp_analyze(self):
        """The E4 connectivity query: stages, costs, and exact sums."""
        query = connectivity_query_lfp(1)
        engine = QueryEngine(one_dim_database())
        result = engine.explain(query, analyze=True)
        # Two separated intervals are not connected.
        assert result.answer.is_empty()
        totals = result.totals["counters"]
        assert totals["lp.solves"] > 0
        assert totals["evaluator.fixpoint_stages"] > 0
        sums = self_counter_sums(result.plan)
        for name in PROFILE_COUNTERS:
            assert sums.get(name, 0) == totals.get(name, 0), name
        fixpoint = next(
            node for node in result.plan.walk() if node.op == "Fixpoint"
        )
        stages = fixpoint.cost["stages"]
        assert stages and stages[0]["stage"] == 1
        assert all("size" in s and "delta" in s for s in stages)

    def test_analyze_attaches_wall_and_trace(self):
        engine = QueryEngine(one_dim_database())
        result = engine.explain("exists x0. S(x0)", analyze=True)
        assert result.totals["wall_ms"] > 0
        assert result.trace is not None
        assert result.events  # journal ring recorded the run
        setup = result.plan.children[0]
        assert setup.cost["wall_ms"] >= 0
        assert result.plan.children[-1].op == "other"

    def test_analyze_totals_match_plain_evaluation(self):
        """EXPLAIN ANALYZE measures the same work a plain run does."""
        from repro.engine import invalidate_cache
        from repro.geometry.simplex import clear_feasibility_cache
        from repro.obs.metrics import metrics_snapshot, reset_metrics

        engine = QueryEngine(one_dim_database())
        result = engine.explain("exists x0. S(x0)", analyze=True)
        analyzed = result.totals["counters"]

        invalidate_cache()
        clear_feasibility_cache()
        reset_metrics()
        plain = QueryEngine(one_dim_database())
        plain.evaluate("exists x0. S(x0)")
        snapshot = metrics_snapshot()
        assert analyzed["lp.solves"] == snapshot["lp.solves"]
        assert analyzed["arrangement.dfs_nodes"] == \
            snapshot["arrangement.dfs_nodes"]


class TestDatalogExplain:
    PROGRAM = (
        "Reach(x) :- S(x), x = 0.\n"
        "Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1."
    )

    def test_plan_and_analyze(self):
        from repro.datalog.parser import parse_program
        from repro.explain import explain_datalog
        from repro.workloads.generators import interval_chain

        program = parse_program(self.PROGRAM)
        database = interval_chain(2)
        static = explain_datalog(
            program, database, executor="interpreted"
        )
        assert static.plan.op == "program"
        assert [n.op for n in static.plan.children] == ["stratum"]
        assert len(static.plan.children[0].children) == 2

        analyzed = explain_datalog(
            program, database, analyze=True, executor="interpreted"
        )
        assert analyzed.totals["converged"] is True
        stratum = analyzed.plan.children[0]
        stages = stratum.cost["stages"]
        assert [s["stage"] for s in stages] == \
            list(range(1, len(stages) + 1))
        assert "Reach" in stages[0]["deltas"]

    def test_compiled_plan_renders_ir_nodes(self):
        from repro.datalog.parser import parse_program
        from repro.explain import explain_datalog
        from repro.workloads.generators import interval_chain

        program = parse_program(self.PROGRAM)
        database = interval_chain(2)
        static = explain_datalog(program, database, executor="compiled")
        stratum = static.plan.children[0]
        # Per predicate: stage-1, recursive and accumulate plans.
        labels = [child.label for child in stratum.children]
        assert labels == [
            "Reach [stage 1]", "Reach [stage ≥2]", "Reach [accumulate]"
        ]
        ops = {
            node.op
            for wrapper in stratum.children
            for node in wrapper.walk()
        }
        assert "ir.union" in ops and "ir.simplify" in ops
        assert "ir.guard" in ops  # semi-naive deltas as IR diffs

        analyzed = explain_datalog(
            program, database, analyze=True, executor="compiled"
        )
        assert analyzed.totals["converged"] is True
        totals = analyzed.totals["counters"]
        sums: dict = {}
        for node in analyzed.plan.walk():
            for name, value in (node.cost or {}).get(
                "self_counters", {}
            ).items():
                sums[name] = sums.get(name, 0) + value
        assert {k: v for k, v in sums.items() if v} == totals


def run_cli(*argv) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


@pytest.fixture
def one_dim_file(tmp_path):
    path = tmp_path / "db1.cdb"
    save_database(one_dim_database(), path)
    return str(path)


class TestExplainCli:
    def test_explain_plain(self, one_dim_file):
        code, output = run_cli(
            "explain", one_dim_file, "exists x0. S(x0)"
        )
        assert code == 0
        assert "EXPLAIN" in output and "ANALYZE" not in output
        assert "∃x0 : ℝ" in output
        assert "extension=build" in output

    def test_explain_analyze_json_sums(self, one_dim_file):
        code, output = run_cli(
            "explain", one_dim_file, "exists x0. S(x0)",
            "--analyze", "--json",
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["analyzed"] is True
        totals = payload["totals"]["counters"]

        def walk(node):
            yield node
            for child in node["children"]:
                yield from walk(child)

        sums: dict = {}
        for node in walk(payload["plan"]):
            for name, value in node.get("cost", {}).get(
                "self_counters", {}
            ).items():
                sums[name] = sums.get(name, 0) + value
        assert {k: v for k, v in sums.items() if v} == totals

    def test_explain_datalog(self, one_dim_file):
        code, output = run_cli(
            "explain", one_dim_file, TestDatalogExplain.PROGRAM,
            "--datalog", "--analyze",
        )
        assert code == 0
        assert "Program [seminaive/compiled]" in output
        assert "Stratum 0" in output
        assert "union ∪" in output  # the compiled IR plan is rendered

    def test_explain_rejects_free_region_vars(self, one_dim_file):
        code, output = run_cli(
            "explain", one_dim_file, "sub(RX, S)"
        )
        assert code == 2
        assert "free region" in output

    def test_explain_journal_replay(self, one_dim_file, tmp_path):
        from repro.obs import replay

        path = tmp_path / "explain.jsonl"
        code, __ = run_cli(
            "explain", one_dim_file, "exists x0. S(x0)",
            "--analyze", "--journal", str(path),
        )
        assert code == 0
        result = replay(str(path))
        assert result.root is not None
        assert result.root.name == "explain"
        assert result.events_of_type("cache")


class TestCliResetIsolation:
    def test_back_to_back_invocations_do_not_leak(self, one_dim_file):
        """Satellite bugfix: main() starts from pristine obs state."""
        from repro.obs.metrics import metrics_snapshot

        code1, out1 = run_cli(
            "profile", one_dim_file, "exists x0. S(x0)"
        )
        first = json.loads(out1)["metrics"]
        code2, out2 = run_cli(
            "profile", one_dim_file, "exists x0. S(x0)"
        )
        second = json.loads(out2)["metrics"]
        assert code1 == code2 == 0
        # Same command, zeroed counters each time: evaluator numbers
        # must not accumulate across invocations.
        assert second["evaluator.evaluations"] == \
            first["evaluator.evaluations"]
        # And nothing keeps counting after main() returns.
        baseline = metrics_snapshot()["evaluator.evaluations"]
        assert baseline == second["evaluator.evaluations"]

    def test_trace_then_plain_leaves_no_open_collection(self, one_dim_file):
        from repro.obs.tracing import TRACER

        run_cli("query", one_dim_file, "exists x0. S(x0)", "--trace")
        assert not TRACER.enabled
        run_cli("query", one_dim_file, "exists x0. S(x0)")
        assert not TRACER.enabled
