"""Parallel builds report the same counters as sequential builds.

Workers measure the counter deltas of their subtree enumeration and
ship them home with the face batch; the parent merges every delta into
its registry.  With the seeded enumerator no longer re-counting its
seed node, a parallel build's ``lp.solves`` / ``arrangement.dfs_nodes``
totals equal the sequential build's exactly — the satellite contract of
``repro query --jobs N``.

The hyperplanes used here have nonzero coefficients on every variable,
so each candidate LP system is variable-connected (a single component):
the per-component feasibility memo then never shares work across DFS
subtrees, which makes the sequential and parallel solve counts exactly
comparable.
"""

import pytest

from repro.arrangement.builder import build_arrangement
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.simplex import clear_feasibility_cache
from repro.obs import reset_all
from repro.obs.journal import JOURNAL
from repro.obs.metrics import metrics_snapshot

PLANES = [
    Hyperplane.make([2 * i + 1, -1], i * i) for i in range(6)
]

WATCHED = (
    "lp.solves",
    "arrangement.dfs_nodes",
    "arrangement.faces",
)


@pytest.fixture(autouse=True)
def _clean_slate():
    reset_all()
    clear_feasibility_cache()
    yield
    reset_all()
    clear_feasibility_cache()


def build(jobs: int):
    clear_feasibility_cache()
    reset_all()
    arrangement = build_arrangement(
        hyperplanes=PLANES, dimension=2, parallel=jobs
    )
    snapshot = metrics_snapshot()
    return arrangement, snapshot


class TestParallelCounterMerge:
    def test_sequential_equals_parallel(self):
        sequential, seq_counts = build(1)
        parallel, par_counts = build(4)
        assert parallel.faces == sequential.faces
        if par_counts.get("arrangement.parallel_fallbacks"):
            pytest.skip("no worker processes available in this sandbox")
        for name in WATCHED:
            assert par_counts.get(name, 0) == seq_counts.get(name, 0), name

    def test_fallback_also_matches_sequential(self, monkeypatch):
        """Pool creation failing must not skew the counters either."""
        import concurrent.futures

        __, seq_counts = build(1)

        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores here")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", broken_pool
        )
        fallback, fb_counts = build(4)
        assert fb_counts["arrangement.parallel_fallbacks"] == 1
        for name in WATCHED:
            assert fb_counts.get(name, 0) == seq_counts.get(name, 0), name

    def test_worker_journal_events(self):
        clear_feasibility_cache()
        reset_all()
        JOURNAL.start()
        build_arrangement(hyperplanes=PLANES, dimension=2, parallel=4)
        events = JOURNAL.stop()
        snapshot = metrics_snapshot()
        if snapshot.get("arrangement.parallel_fallbacks"):
            pytest.skip("no worker processes available in this sandbox")
        spawns = [e for e in events if e["type"] == "worker.spawn"]
        merges = [e for e in events if e["type"] == "worker.merge"]
        assert len(spawns) == 1
        assert spawns[0]["jobs"] == 4
        assert spawns[0]["subtrees"] == len(merges)
        # The merged deltas cover the workers' share of the DFS.
        merged_nodes = sum(
            e["counters"].get("arrangement.dfs_nodes", 0) for e in merges
        )
        assert 0 < merged_nodes <= snapshot["arrangement.dfs_nodes"]


class TestEngineJobsParity:
    def test_query_jobs_reports_sequential_counters(self, tmp_path):
        """`repro query --jobs 4` == `--jobs 1` on the watched counters."""
        from repro.constraints.database import ConstraintDatabase
        from repro.constraints.parser import parse_formula
        from repro.constraints.relation import ConstraintRelation
        from repro.engine import QueryEngine, invalidate_cache

        def fresh_db():
            # Full-support coefficients keep every LP system connected.
            return ConstraintDatabase.make({
                "S": ConstraintRelation.make(
                    ("x0", "x1"),
                    parse_formula(
                        "(x0 + x1 > 0 & x0 - x1 < 2) | "
                        "(2 * x0 + x1 < -1 & x0 - 3 * x1 > 1)"
                    ),
                )
            })

        def run(jobs):
            invalidate_cache()
            clear_feasibility_cache()
            reset_all()
            engine = QueryEngine(fresh_db(), jobs=jobs)
            engine.evaluate("exists x0. exists x1. S(x0, x1)")
            return metrics_snapshot()

        seq = run(1)
        par = run(4)
        if par.get("arrangement.parallel_fallbacks"):
            pytest.skip("no worker processes available in this sandbox")
        assert par["lp.solves"] == seq["lp.solves"]
        assert par["arrangement.dfs_nodes"] == seq["arrangement.dfs_nodes"]
