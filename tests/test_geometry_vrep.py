"""Tests for V-representation convex bodies (open hulls, rays)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.vrep import VPolyhedron, canonical_ray

F = Fraction


def open_triangle():
    return VPolyhedron.make([(F(0), F(0)), (F(2), F(0)), (F(0), F(2))])


class TestCanonicalRay:
    def test_primitive_scaling(self):
        assert canonical_ray((F(2), F(4))) == (F(1), F(2))
        assert canonical_ray((F(1, 2), F(1))) == (F(1), F(2))

    def test_sign_kept(self):
        assert canonical_ray((F(-2), F(4))) == (F(-1), F(2))

    def test_zero_rejected(self):
        with pytest.raises(GeometryError):
            canonical_ray((F(0), F(0)))


class TestOpenHulls:
    def test_open_triangle_membership(self):
        tri = open_triangle()
        assert tri.contains((F(1, 2), F(1, 2)))
        assert not tri.contains((F(0), F(0)))  # vertex excluded
        assert not tri.contains((F(1), F(0)))  # edge excluded
        assert not tri.contains((F(3), F(3)))

    def test_closure_includes_boundary(self):
        tri = open_triangle()
        assert tri.closure_contains((F(0), F(0)))
        assert tri.closure_contains((F(1), F(0)))
        assert not tri.closure_contains((F(3), F(3)))

    def test_open_segment(self):
        seg = VPolyhedron.make([(F(0), F(0)), (F(2), F(2))])
        assert seg.contains((F(1), F(1)))
        assert not seg.contains((F(0), F(0)))
        assert seg.affine_dimension() == 1

    def test_single_point(self):
        point = VPolyhedron.make([(F(3), F(4))])
        assert point.contains((F(3), F(4)))
        assert point.affine_dimension() == 0
        assert point.is_bounded()

    def test_duplicate_points_collapse(self):
        a = VPolyhedron.make([(F(0), F(0)), (F(0), F(0)), (F(1), F(0))])
        b = VPolyhedron.make([(F(0), F(0)), (F(1), F(0))])
        assert a.generator_key() == b.generator_key()

    def test_sample_point_is_member(self):
        tri = open_triangle()
        assert tri.contains(tri.sample_point())


class TestRays:
    def open_ray(self):
        # {(1,1) + a*(1,0) : a > 0}
        return VPolyhedron.make([(F(1), F(1))], rays=[(F(1), F(0))])

    def test_open_ray_membership(self):
        ray = self.open_ray()
        assert ray.contains((F(2), F(1)))
        assert not ray.contains((F(1), F(1)))  # base point excluded (a > 0)
        assert not ray.contains((F(0), F(1)))
        assert ray.closure_contains((F(1), F(1)))

    def test_unbounded(self):
        assert not self.open_ray().is_bounded()
        assert self.open_ray().affine_dimension() == 1

    def test_recession_cone(self):
        wedge = VPolyhedron.make(
            [(F(0), F(0))], rays=[(F(1), F(0)), (F(0), F(1))]
        )
        assert wedge.ray_in_recession_cone((F(1), F(1)))
        assert wedge.ray_in_recession_cone((F(2), F(0)))
        assert not wedge.ray_in_recession_cone((F(-1), F(0)))

    def test_sample_point_with_rays(self):
        ray = self.open_ray()
        assert ray.contains(ray.sample_point())

    def test_open_wedge_between_rays(self):
        # openconv of two open rays from distinct base points.
        wedge = VPolyhedron.make(
            [(F(0), F(0)), (F(2), F(0))],
            rays=[(F(0), F(1)), (F(1), F(1))],
        )
        assert wedge.contains((F(2), F(3)))
        assert not wedge.contains((F(0), F(0)))


class TestContainmentAndSegments:
    def test_subset_of_closure(self):
        tri = open_triangle()
        edge = VPolyhedron.make([(F(0), F(0)), (F(2), F(0))])
        assert edge.subset_of_closure(tri)
        assert not tri.subset_of_closure(edge)

    def test_subset_of_closure_with_rays(self):
        big = VPolyhedron.make(
            [(F(0), F(0))], rays=[(F(1), F(0)), (F(0), F(1))]
        )
        small = VPolyhedron.make([(F(1), F(1))], rays=[(F(1), F(1))])
        assert small.subset_of_closure(big)
        assert not big.subset_of_closure(small)

    def test_meets_segment(self):
        tri = open_triangle()
        assert tri.meets_segment((F(-1), F(1, 2)), (F(3), F(1, 2)))
        assert not tri.meets_segment((F(-1), F(3)), (F(3), F(3)))

    def test_open_segment_vertex_touch(self):
        tri = open_triangle()
        # Segment ending exactly at the open triangle's closure vertex does
        # not meet the OPEN hull at all.
        assert not tri.meets_segment((F(-1), F(0)), (F(0), F(0)))
        # But a segment passing through the interior does, even without
        # endpoints.
        assert tri.meets_segment(
            (F(-1), F(1, 2)), (F(3), F(1, 2)), include_endpoints=False
        )

    def test_dimension_mismatch(self):
        tri = open_triangle()
        line = VPolyhedron.make([(F(0),), (F(1),)])
        with pytest.raises(GeometryError):
            line.subset_of_closure(tri)


class TestVrepProperties:
    @given(
        points=st.lists(
            st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_sample_point_always_member(self, points):
        body = VPolyhedron.make([(F(a), F(b)) for a, b in points])
        assert body.contains(body.sample_point())

    @given(
        points=st.lists(
            st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_open_subset_of_own_closure(self, points):
        body = VPolyhedron.make([(F(a), F(b)) for a, b in points])
        assert body.subset_of_closure(body)
        for point in body.points:
            assert body.closure_contains(point)

    @given(
        points=st.lists(
            st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
            min_size=2,
            max_size=4,
            unique=True,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_generators_excluded_from_open_hull_when_extreme(self, points):
        """Lexicographically smallest generator is extreme, so not inside."""
        body = VPolyhedron.make([(F(a), F(b)) for a, b in points])
        smallest = min(body.points)
        if len(body.points) > 1:
            assert not body.contains(smallest)
