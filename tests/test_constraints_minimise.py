"""Unit tests for DNF minimisation (redundancy, subsumption, merging)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.atoms import Atom, Op
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.constraints.simplify import (
    merge_equality_pairs,
    minimise_dnf,
    remove_redundant_atoms,
)
from repro.constraints.terms import LinearTerm

F = Fraction


def atom(text_coeff: int, op: Op, rhs: int, var: str = "x") -> Atom:
    return Atom(LinearTerm.make({var: text_coeff}, -rhs), op)


class TestRedundantAtoms:
    def test_weaker_bound_removed(self):
        # x <= 1 & x <= 5: the second is implied.
        disjunct = (atom(1, Op.LE, 1), atom(1, Op.LE, 5))
        reduced = remove_redundant_atoms(disjunct)
        assert reduced == (atom(1, Op.LE, 1),)

    def test_scaled_duplicate_removed(self):
        # x <= 2 and 2x <= 4 are the same halfline.
        disjunct = (atom(1, Op.LE, 2), atom(2, Op.LE, 4))
        reduced = remove_redundant_atoms(disjunct)
        assert len(reduced) == 1

    def test_nothing_removed_when_independent(self):
        disjunct = (atom(1, Op.GE, 0), atom(1, Op.LE, 1))
        assert remove_redundant_atoms(disjunct) == disjunct

    def test_equality_dominates_bounds(self):
        disjunct = (atom(1, Op.EQ, 3), atom(1, Op.LE, 5), atom(1, Op.GE, 0))
        reduced = remove_redundant_atoms(disjunct)
        assert reduced == (atom(1, Op.EQ, 3),)

    def test_two_variables(self):
        # x <= y & x <= y + 1: second redundant.
        a1 = Atom(
            LinearTerm.make({"x": 1, "y": -1}), Op.LE
        )
        a2 = Atom(
            LinearTerm.make({"x": 1, "y": -1}, -1), Op.LE
        )
        assert remove_redundant_atoms((a1, a2)) == (a1,)


class TestEqualityMerging:
    def test_le_ge_pair_merges(self):
        disjunct = (atom(1, Op.LE, 3), atom(1, Op.GE, 3))
        merged = merge_equality_pairs(disjunct)
        assert len(merged) == 1
        assert merged[0].op is Op.EQ

    def test_opposite_terms_merge(self):
        # x <= 3 and -x <= -3.
        a1 = atom(1, Op.LE, 3)
        a2 = Atom(LinearTerm.make({"x": -1}, 3), Op.LE)
        merged = merge_equality_pairs((a1, a2))
        assert len(merged) == 1
        assert merged[0].op is Op.EQ

    def test_unrelated_bounds_untouched(self):
        disjunct = (atom(1, Op.LE, 3), atom(1, Op.GE, 0))
        assert merge_equality_pairs(disjunct) == disjunct

    def test_leading_coefficient_positive(self):
        a1 = Atom(LinearTerm.make({"x": -1}, 1), Op.LE)  # -x <= -1
        a2 = Atom(LinearTerm.make({"x": -1}, 1), Op.GE)
        merged = merge_equality_pairs((a1, a2))
        assert merged[0].term.coefficient("x") > 0


class TestMinimise:
    def test_subsumed_disjunct_dropped(self):
        relation = ConstraintRelation.make(
            ("x",),
            parse_formula("(0 <= x & x <= 2) | (0 <= x & x <= 1)"),
        )
        minimal = minimise_dnf(relation.disjuncts())
        assert len(minimal) == 1
        rebuilt = ConstraintRelation.make(
            ("x",),
            parse_formula("0 <= x & x <= 2"),
        )
        from repro.constraints.relation import relation_from_disjuncts

        assert relation_from_disjuncts(("x",), minimal).equivalent(rebuilt)

    def test_identical_disjuncts_collapse(self):
        relation = ConstraintRelation.make(
            ("x",), parse_formula("(x > 0) | (x > 0)")
        )
        assert len(minimise_dnf(relation.disjuncts())) == 1

    def test_mutual_subsumption_keeps_one(self):
        relation = ConstraintRelation.make(
            ("x",), parse_formula("(x <= 1) | (2*x <= 2)")
        )
        assert len(minimise_dnf(relation.disjuncts())) == 1

    @given(
        bounds=st.lists(
            st.tuples(st.integers(-3, 3), st.integers(0, 3)),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_minimise_preserves_semantics(self, bounds):
        parts = [
            f"({lo} <= x & x <= {lo + width})" for lo, width in bounds
        ]
        relation = ConstraintRelation.make(
            ("x",), parse_formula(" | ".join(parts))
        )
        from repro.constraints.relation import relation_from_disjuncts

        minimal = relation_from_disjuncts(
            ("x",), minimise_dnf(relation.disjuncts())
        )
        assert minimal.equivalent(relation)
        assert minimal.representation_size() <= \
            relation.representation_size()
