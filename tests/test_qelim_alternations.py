"""Quantifier-alternation battery for QE over (ℝ, <, +).

Classical validities and non-validities of the theory of divisible
ordered abelian groups — density, no endpoints, divisibility by
integers, averaging — each decided by full quantifier elimination.
These exercise ∀∃ and ∃∀ alternations that the single-block tests
don't reach.
"""

import pytest

from repro.constraints.parser import parse_formula
from repro.constraints.qelim import (
    eliminate_quantifiers,
    is_satisfiable_qf,
    is_valid_qf,
)


def decide(text: str) -> bool:
    """Truth value of a sentence over (ℝ, <, +)."""
    qf = eliminate_quantifiers(parse_formula(text))
    assert qf.is_quantifier_free()
    return is_valid_qf(qf) if not qf.free_variables() else False


VALID = [
    # Density.
    "forall x, y. x < y -> (exists z. x < z & z < y)",
    # No endpoints.
    "forall x. exists y. y > x",
    "forall x. exists y. y < x",
    # Divisibility by 2 and 3 (unique halving).
    "forall x. exists y. y + y = x",
    "forall x. exists y. y + y + y = x",
    # Averaging.
    "forall x, y. exists z. z + z = x + y",
    # Unboundedness of solutions of inequalities.
    "forall a. exists x. x > a & x > 0",
    # An ∃∀ truth: some x is below-or-equal nothing positive... trivial
    # form: there is x with x <= x.
    "exists x. forall y. y > x -> y > x",
    # Triple alternation: between any two there is one, and below it
    # another.
    "forall x, y. x < y -> (exists z. x < z & z < y & "
    "(exists w. x < w & w < z))",
    # Archimedean-flavoured (with fixed coefficient): for every x there
    # is y with 2y > x.
    "forall x. exists y. y + y > x",
]

INVALID = [
    # A least element does not exist.
    "exists x. forall y. x <= y",
    # A greatest element does not exist.
    "exists x. forall y. y <= x",
    # Discreteness fails (no immediate successor).
    "exists x. exists y. x < y & !(exists z. x < z & z < y)",
    # ∀∃ with an impossible witness.
    "forall x. exists y. y < x & y > x",
    # Wrong direction of density.
    "exists x, y. x < y & (forall z. z <= x | z >= y)",
]


class TestSentences:
    @pytest.mark.parametrize("text", VALID)
    def test_valid_sentences(self, text):
        assert decide(text), text

    @pytest.mark.parametrize("text", INVALID)
    def test_invalid_sentences(self, text):
        assert not decide(text), text


class TestOpenFormulas:
    def test_between_characterisation(self):
        """∃z (x < z < y) reduces to x < y."""
        from fractions import Fraction as F

        qf = eliminate_quantifiers(
            parse_formula("exists z. x < z & z < y")
        )
        assert qf.evaluate({"x": F(0), "y": F(1)})
        assert not qf.evaluate({"x": F(1), "y": F(0)})
        assert not qf.evaluate({"x": F(1), "y": F(1)})

    def test_forall_bound_transfer(self):
        """∀y (y > x → y > c) reduces to x >= c."""
        from fractions import Fraction as F

        qf = eliminate_quantifiers(
            parse_formula("forall y. y > x -> y > 3")
        )
        assert qf.evaluate({"x": F(3)})
        assert qf.evaluate({"x": F(4)})
        assert not qf.evaluate({"x": F(2)})

    def test_alternation_with_parameters(self):
        """∀u ∃v (u < v ∧ v < w) reduces to false (u unbounded)."""
        qf = eliminate_quantifiers(
            parse_formula("forall u. exists v. u < v & v < w")
        )
        assert not is_satisfiable_qf(qf)

    def test_halving_with_offset(self):
        """∃y (2y = x ∧ y > 1) reduces to x > 2."""
        from fractions import Fraction as F

        qf = eliminate_quantifiers(
            parse_formula("exists y. y + y = x & y > 1")
        )
        assert qf.evaluate({"x": F(3)})
        assert not qf.evaluate({"x": F(2)})
