"""Unit and property tests for exact linear algebra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, SingularSystemError
from repro.geometry import linalg
from repro.geometry.linalg import (
    affine_hull_equations,
    affine_rank,
    are_affinely_independent,
    gaussian_elimination,
    kernel_basis,
    matrix_rank,
    solve_linear_system,
    solve_unique,
    vec_add,
    vec_dot,
    vec_is_zero,
    vec_midpoint,
    vec_scale,
    vec_sub,
    vector,
    zero_vector,
    unit_vector,
)

F = Fraction

rationals = st.fractions(
    min_value=-100, max_value=100, max_denominator=20
)


def vectors(dim: int):
    return st.tuples(*[rationals] * dim)


class TestScalarCoercion:
    def test_int_and_str(self):
        assert linalg.as_fraction(3) == F(3)
        assert linalg.as_fraction("2/5") == F(2, 5)

    def test_fraction_passthrough(self):
        assert linalg.as_fraction(F(1, 3)) == F(1, 3)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            linalg.as_fraction(0.5)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            linalg.as_fraction(True)


class TestVectorOps:
    def test_add_sub_scale(self):
        u = vector([1, 2])
        v = vector([3, "1/2"])
        assert vec_add(u, v) == (F(4), F(5, 2))
        assert vec_sub(v, u) == (F(2), F(-3, 2))
        assert vec_scale(F(2), u) == (F(2), F(4))

    def test_dot(self):
        assert vec_dot(vector([1, 2, 3]), vector([4, 5, 6])) == F(32)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            vec_add(vector([1]), vector([1, 2]))

    def test_zero_and_unit(self):
        assert zero_vector(3) == (F(0), F(0), F(0))
        assert unit_vector(3, 1) == (F(0), F(1), F(0))
        assert vec_is_zero(zero_vector(4))

    def test_midpoint(self):
        assert vec_midpoint(vector([0, 0]), vector([1, 3])) == (F(1, 2), F(3, 2))

    def test_unit_vector_out_of_range(self):
        with pytest.raises(IndexError):
            unit_vector(2, 5)


class TestGaussianElimination:
    def test_identity_stays(self):
        rows = [[F(1), F(0)], [F(0), F(1)]]
        rref, pivots = gaussian_elimination(rows)
        assert rref == rows
        assert pivots == [0, 1]

    def test_rank_deficient(self):
        rows = [[F(1), F(2)], [F(2), F(4)]]
        __, pivots = gaussian_elimination(rows)
        assert pivots == [0]

    def test_input_not_mutated(self):
        rows = [[F(2), F(4)], [F(1), F(3)]]
        snapshot = [list(r) for r in rows]
        gaussian_elimination(rows)
        assert rows == snapshot

    def test_ragged_rejected(self):
        with pytest.raises(DimensionMismatchError):
            gaussian_elimination([[F(1)], [F(1), F(2)]])


class TestSolving:
    def test_unique_solution(self):
        a = [[F(2), F(1)], [F(1), F(-1)]]
        b = [F(5), F(1)]
        assert solve_unique(a, b) == (F(2), F(1))

    def test_inconsistent_returns_none(self):
        a = [[F(1), F(1)], [F(1), F(1)]]
        b = [F(1), F(2)]
        assert solve_linear_system(a, b) is None

    def test_underdetermined_gives_some_solution(self):
        a = [[F(1), F(1)]]
        b = [F(3)]
        solution = solve_linear_system(a, b)
        assert solution is not None
        assert vec_dot(a[0], solution) == F(3)

    def test_solve_unique_rejects_singular(self):
        with pytest.raises(SingularSystemError):
            solve_unique([[F(1), F(2)], [F(2), F(4)]], [F(1), F(2)])

    @given(
        matrix=st.lists(vectors(3), min_size=3, max_size=3),
        solution=vectors(3),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, matrix, solution):
        """If we build b = A x, solving returns some x' with A x' = b."""
        rows = [list(r) for r in matrix]
        b = [vec_dot(row, solution) for row in rows]
        found = solve_linear_system(rows, b)
        assert found is not None
        for row, rhs in zip(rows, b):
            assert vec_dot(row, found) == rhs


class TestKernelAndRank:
    def test_kernel_orthogonal(self):
        rows = [[F(1), F(2), F(3)]]
        basis = kernel_basis(rows)
        assert len(basis) == 2
        for vec in basis:
            assert vec_dot(rows[0], vec) == 0

    def test_full_rank_kernel_empty(self):
        rows = [[F(1), F(0)], [F(0), F(1)]]
        assert kernel_basis(rows) == []

    @given(st.lists(vectors(4), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_rank_nullity(self, matrix):
        rows = [list(r) for r in matrix]
        assert matrix_rank(rows) + len(kernel_basis(rows)) == 4


class TestAffine:
    def test_affine_rank_cases(self):
        assert affine_rank([]) == -1
        assert affine_rank([vector([1, 1])]) == 0
        assert affine_rank([vector([0, 0]), vector([1, 1])]) == 1
        assert affine_rank(
            [vector([0, 0]), vector([1, 0]), vector([0, 1])]
        ) == 2

    def test_collinear_points(self):
        points = [vector([0, 0]), vector([1, 1]), vector([2, 2])]
        assert affine_rank(points) == 1
        assert not are_affinely_independent(points)

    def test_affine_hull_equations_line(self):
        points = [vector([0, 0]), vector([1, 1])]
        equations = affine_hull_equations(points)
        assert len(equations) == 1
        normal, offset = equations[0]
        for p in points:
            assert vec_dot(normal, p) == offset

    def test_affine_hull_full_dim_empty(self):
        points = [vector([0, 0]), vector([1, 0]), vector([0, 1])]
        assert affine_hull_equations(points) == []

    def test_affine_hull_single_point(self):
        equations = affine_hull_equations([vector([2, 3])])
        assert len(equations) == 2
        for normal, offset in equations:
            assert vec_dot(normal, vector([2, 3])) == offset
