"""Tests for stratified negation in spatial datalog."""

from fractions import Fraction

import pytest

from repro.errors import EvaluationError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.datalog import evaluate_program
from repro.datalog.parser import parse_program, parse_rule

F = Fraction


def db(text: str, arity: int = 1) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


UNREACHABLE = """
Reach(x) :- S(x), x = 0.
Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.
Stranded(x) :- S(x), !Reach(x).
"""


class TestStratifiedNegation:
    def test_parse_negated_atom(self):
        rule = parse_rule("Stranded(x) :- S(x), !Reach(x).")
        assert len(rule.negated) == 1
        assert rule.negated[0].predicate == "Reach"
        assert "!Reach(x)" in str(rule)

    def test_strata_computed(self):
        program = parse_program(UNREACHABLE)
        strata = program.strata()
        assert len(strata) == 2
        assert "Reach" in strata[0]
        assert "Stranded" in strata[1]

    def test_stranded_is_complement_within_s(self):
        program = parse_program(UNREACHABLE)
        database = db("(0 <= x0 & x0 <= 2) | (5 <= x0 & x0 <= 6)")
        outcome = evaluate_program(program, database)
        assert outcome.converged
        stranded = outcome["Stranded"]
        assert stranded.contains((F(5),))
        assert stranded.contains((F(11, 2),))
        assert not stranded.contains((F(1),))
        assert not stranded.contains((F(3),))  # not in S at all
        # Reach ∪ Stranded = S, and they are disjoint.
        reach = outcome["Reach"].rename_to(("x0",))
        union = reach.union(stranded.rename_to(("x0",)))
        assert union.equivalent(database.spatial)
        assert reach.intersect(
            stranded.rename_to(("x0",))
        ).is_empty()

    def test_negation_of_edb(self):
        program = parse_program("Out(x) :- T(x), !S(x).\n")
        database = ConstraintDatabase.make({
            "S": db("0 <= x0 & x0 <= 1").spatial,
            "T": db("0 <= x0 & x0 <= 2").spatial,
        })
        outcome = evaluate_program(program, database)
        assert outcome.converged
        assert outcome["Out"].contains((F(3, 2),))
        assert not outcome["Out"].contains((F(1, 2),))

    def test_unstratifiable_rejected(self):
        program = parse_program(
            "A(x) :- S(x), !B(x).\n"
            "B(x) :- S(x), !A(x).\n"
        )
        with pytest.raises(EvaluationError):
            evaluate_program(program, db("x0 >= 0"))

    def test_self_negation_rejected(self):
        program = parse_program("A(x) :- S(x), !A(x).\n")
        with pytest.raises(EvaluationError):
            evaluate_program(program, db("x0 >= 0"))

    def test_positive_cycles_still_fine(self):
        program = parse_program(
            "A(x) :- S(x), x = 0.\n"
            "A(y) :- B(x), S(y), y = x.\n"
            "B(x) :- A(x).\n"
        )
        outcome = evaluate_program(program, db("0 <= x0 & x0 <= 1"))
        assert outcome.converged
        assert outcome["B"].contains((F(0),))

    def test_negated_arity_checked(self):
        program = parse_program("A(x) :- S(x), !S(x, x).\n")
        # Repeated variables are rejected earlier; use a fresh program:
        program = parse_program("A(x) :- S(x), !T(x, y).\n")
        with pytest.raises(EvaluationError):
            evaluate_program(program, db("x0 > 0"))