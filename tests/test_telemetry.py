"""The dimensional telemetry layer: histograms, gauges, labels, SLOs.

Covers the thread-safety contract (exact count/sum conservation under
a 16-thread hammer), the label-cardinality guards, snapshot/merge
without double-counting, the Prometheus text exposition invariants
(bucket monotonicity, ``+Inf`` equals ``_count``), the SLO burn-rate
tracker, the slow-query log's bounded rotation, and the benchmark
regression sentry.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.bench import check_regression, load_history
from repro.obs import reset_all
from repro.obs.metrics import MetricsRegistry, get_registry, merge_snapshot
from repro.obs.slowlog import SlowQueryLog, load_slow_log
from repro.obs.telemetry import (
    DEFAULT_BUCKETS,
    MAX_SERIES_PER_NAME,
    Gauge,
    Histogram,
    SloTracker,
    TelemetryRegistry,
    bucket_quantile,
    get_telemetry,
    quantile,
    render_prometheus,
    reset_telemetry,
    telemetry_snapshot,
)


@pytest.fixture(autouse=True)
def _clean_slate():
    reset_all()
    yield
    reset_all()


class TestQuantile:
    def test_empty_is_zero(self):
        assert quantile([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 0.5) == 3.0
        assert quantile(values, 1.0) == 5.0

    def test_loadgen_percentile_delegates(self):
        from repro.server.loadgen import percentile

        assert percentile([1.0, 2.0, 3.0], 0.5) == quantile(
            [1.0, 2.0, 3.0], 0.5
        )
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestBucketQuantile:
    def test_shape_is_checked(self):
        with pytest.raises(ValueError):
            bucket_quantile([1.0, 2.0], [1, 2], 0.5)

    def test_empty_histogram_is_zero(self):
        assert bucket_quantile([1.0, 2.0], [0, 0, 0], 0.5) == 0.0

    def test_interpolates_inside_winning_bucket(self):
        # 10 observations all landed in (1.0, 2.0]: the median sits
        # halfway through that bucket.
        estimate = bucket_quantile([1.0, 2.0, 4.0], [0, 10, 10, 10], 0.5)
        assert estimate == pytest.approx(1.5)

    def test_overflow_clamps_to_largest_finite_bound(self):
        estimate = bucket_quantile([1.0, 2.0], [0, 0, 5], 0.99)
        assert estimate == 2.0


class TestHistogram:
    def test_count_and_sum_are_exact(self):
        histogram = Histogram("h")
        for value in (0.001, 0.002, 0.5):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.503)

    def test_quantile_brackets_observations(self):
        histogram = Histogram("h")
        for __ in range(100):
            histogram.observe(0.01)
        p50 = histogram.quantile(0.5)
        # 0.01 lands in the (0.0064, 0.0128] bucket.
        assert 0.0064 <= p50 <= 0.0128

    def test_percentiles_trio(self):
        histogram = Histogram("h")
        histogram.observe(0.001)
        trio = histogram.percentiles()
        assert set(trio) == {"p50", "p90", "p99"}

    def test_time_context_manager_observes_once(self):
        histogram = Histogram("h")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(0.0, 1.0))

    def test_reset_keeps_identity(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.sum == 0.0
        assert histogram.cumulative()[-1] == 0

    def test_threaded_hammer_conserves_count_and_sum(self):
        """16 threads x 1000 observations: nothing lost, nothing doubled."""
        histogram = Histogram("h")
        threads, per_thread = 16, 1000

        def hammer(seed: int) -> None:
            for i in range(per_thread):
                histogram.observe((seed + i) % 7 * 0.001 + 0.0001)

        workers = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert histogram.count == threads * per_thread
        expected = sum(
            (t + i) % 7 * 0.001 + 0.0001
            for t in range(threads)
            for i in range(per_thread)
        )
        assert histogram.sum == pytest.approx(expected)
        # Bucket counts and the exact count agree.
        assert histogram.cumulative()[-1] == histogram.count


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec()
        assert gauge.value == 6.0

    def test_track_decrements_on_exception(self):
        gauge = Gauge("g")
        with pytest.raises(RuntimeError):
            with gauge.track():
                assert gauge.value == 1.0
                raise RuntimeError("boom")
        assert gauge.value == 0.0

    def test_threaded_hammer_conserves_level(self):
        gauge = Gauge("g")
        threads, per_thread = 16, 1000

        def hammer() -> None:
            for __ in range(per_thread):
                gauge.inc()
                gauge.dec()
            gauge.inc(3.0)

        workers = [
            threading.Thread(target=hammer) for __ in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert gauge.value == pytest.approx(3.0 * threads)


class TestRegistry:
    def test_create_on_first_use_and_identity(self):
        registry = TelemetryRegistry()
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")
        assert len(registry) == 2

    def test_labeled_series_are_distinct(self):
        registry = TelemetryRegistry()
        plain = registry.histogram("h")
        labeled = registry.histogram("h", {"tenant": "acme"})
        assert plain is not labeled
        assert labeled.labels == (("tenant", "acme"),)

    def test_disallowed_label_rejected(self):
        registry = TelemetryRegistry()
        with pytest.raises(ValueError, match="disallowed"):
            registry.histogram("h", {"user_id": "123"})

    def test_family_cap_folds_into_unlabeled_aggregate(self):
        registry = TelemetryRegistry()
        aggregate = registry.histogram("h")
        for i in range(MAX_SERIES_PER_NAME + 10):
            registry.histogram("h", {"tenant": f"t{i}"}).observe(0.001)
        # Existing labeled series keep working; overflow went to the
        # unlabeled aggregate instead of minting new series.
        total = sum(s.count for s in registry.histograms())
        assert total == MAX_SERIES_PER_NAME + 10
        assert aggregate.count > 0
        families = [s for s in registry.histograms() if s.name == "h"]
        assert len(families) <= MAX_SERIES_PER_NAME

    def test_snapshot_merge_does_not_double_count(self):
        source = TelemetryRegistry()
        source.histogram("h", {"tenant": "acme"}).observe(0.01)
        source.histogram("h", {"tenant": "acme"}).observe(0.02)
        source.gauge("g").set(7.0)

        target = TelemetryRegistry()
        target.histogram("h", {"tenant": "acme"}).observe(0.04)
        target.merge(source.snapshot())

        merged = target.histogram("h", {"tenant": "acme"})
        assert merged.count == 3
        assert merged.sum == pytest.approx(0.07)
        assert target.gauge("g").value == 7.0
        # Merging the same snapshot twice WOULD double-count — each
        # shipped state must be folded exactly once, like counters.
        target.merge(source.snapshot())
        assert merged.count == 5

    def test_merge_bucket_mismatch_raises(self):
        source = TelemetryRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        target = TelemetryRegistry()
        target.histogram("h")  # default buckets
        with pytest.raises(ValueError, match="bucket mismatch"):
            target.merge(source.snapshot())

    def test_reset_zeroes_in_place(self):
        registry = TelemetryRegistry()
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        registry.gauge("g").set(4.0)
        registry.reset()
        assert histogram.count == 0
        assert registry.gauge("g").value == 0.0
        assert len(registry) == 2  # identities survive


class TestProcessWideHelpers:
    def test_reset_all_clears_telemetry(self):
        get_telemetry().histogram("h").observe(1.0)
        get_telemetry().gauge("g").set(2.0)
        reset_all()
        assert get_telemetry().histogram("h").count == 0
        assert get_telemetry().gauge("g").value == 0.0

    def test_reset_telemetry_alone(self):
        get_telemetry().histogram("h").observe(1.0)
        reset_telemetry()
        assert get_telemetry().histogram("h").count == 0

    def test_merge_snapshot_routes_mixed_payload(self):
        """One worker snapshot may carry counter deltas AND series states."""
        worker = TelemetryRegistry()
        worker.histogram("h").observe(0.5)
        worker.gauge("g").set(9.0)
        payload: dict = {"lp.solves": 4}
        payload.update(worker.snapshot())

        merge_snapshot(payload)

        assert get_registry().counter("lp.solves").value == 4
        assert get_telemetry().histogram("h").count == 1
        assert get_telemetry().histogram("h").sum == pytest.approx(0.5)
        assert get_telemetry().gauge("g").value == 9.0
        # Telemetry states land in the telemetry registry, never as
        # phantom counters.
        snapshot = get_registry().snapshot()
        assert all(isinstance(v, int) for v in snapshot.values())

    def test_telemetry_snapshot_round_trip(self):
        get_telemetry().histogram("h").observe(0.25)
        shipped = telemetry_snapshot()
        reset_all()
        merge_snapshot(shipped)
        assert get_telemetry().histogram("h").count == 1


class TestRenderPrometheus:
    def test_counters_get_total_suffix_and_type(self):
        text = render_prometheus(
            {"lp.solves": 3}, TelemetryRegistry()
        )
        assert "# TYPE repro_lp_solves_total counter" in text
        assert "repro_lp_solves_total 3" in text

    def test_histogram_bucket_monotonicity_and_inf(self):
        registry = TelemetryRegistry()
        histogram = registry.histogram("server.request_seconds")
        for value in (0.0001, 0.004, 0.03, 99999.0):
            histogram.observe(value)
        text = render_prometheus({}, registry)
        bucket_values = []
        inf_value = count_value = None
        for line in text.splitlines():
            if line.startswith("repro_server_request_seconds_bucket"):
                value = int(line.rsplit(" ", 1)[1])
                if 'le="+Inf"' in line:
                    inf_value = value
                else:
                    bucket_values.append(value)
            elif line.startswith("repro_server_request_seconds_count"):
                count_value = int(line.rsplit(" ", 1)[1])
        assert bucket_values == sorted(bucket_values), "cumulative"
        assert len(bucket_values) == len(DEFAULT_BUCKETS)
        assert inf_value == count_value == 4

    def test_labeled_series_render_with_labels(self):
        registry = TelemetryRegistry()
        registry.histogram(
            "server.request_seconds",
            {"tenant": "acme", "endpoint": "/v1/query"},
        ).observe(0.01)
        registry.gauge("server.inflight_requests").set(2)
        text = render_prometheus({}, registry)
        assert 'endpoint="/v1/query"' in text
        assert 'tenant="acme"' in text
        assert "# TYPE repro_server_inflight_requests gauge" in text

    def test_label_values_are_escaped(self):
        registry = TelemetryRegistry()
        registry.gauge("g", {"tenant": 'a"b\\c\nd'}).set(1)
        text = render_prometheus({}, registry)
        assert 'tenant="a\\"b\\\\c\\nd"' in text

    def test_output_is_diff_stable(self):
        registry = TelemetryRegistry()
        registry.histogram("b").observe(0.1)
        registry.gauge("a").set(1)
        assert render_prometheus({"z": 1}, registry) == render_prometheus(
            {"z": 1}, registry
        )


class TestSloTracker:
    def _tracker(self, **kwargs):
        clock = {"now": 0.0}

        def advance(seconds: float) -> None:
            clock["now"] += seconds

        tracker = SloTracker(
            latency_ms=100.0, clock=lambda: clock["now"], **kwargs
        )
        return tracker, advance

    def test_good_requests_never_alert(self):
        tracker, __ = self._tracker()
        for __pass in range(50):
            assert tracker.observe("acme", 10.0) is None

    def test_burn_alert_is_edge_triggered(self):
        tracker, advance = self._tracker()
        alerts = []
        for __ in range(10):
            alert = tracker.observe("acme", 500.0)
            if alert is not None:
                alerts.append(alert)
            advance(1.0)
        assert len(alerts) == 1, "one alert per burn episode, not per event"
        assert alerts[0]["tenant"] == "acme"
        assert alerts[0]["burn_rate"] > 1.0

    def test_errors_breach_even_when_fast(self):
        tracker, __ = self._tracker()
        alert = tracker.observe("acme", 1.0, error=True)
        assert alert is not None

    def test_stats_shape_and_windows(self):
        tracker, advance = self._tracker()
        tracker.observe("acme", 500.0)
        tracker.observe("acme", 10.0)
        advance(1.0)
        stats = tracker.stats()
        assert stats["objective"]["latency_ms"] == 100.0
        windows = stats["tenants"]["acme"]["windows"]
        assert windows["300s"]["total"] == 2
        assert windows["300s"]["breaches"] == 1
        assert windows["3600s"]["burn_rate"] > 0

    def test_old_events_age_out(self):
        tracker, advance = self._tracker()
        tracker.observe("acme", 500.0)
        advance(4000.0)  # beyond the long window
        tracker.observe("acme", 10.0)
        windows = tracker.stats()["tenants"]["acme"]["windows"]
        assert windows["3600s"]["breaches"] == 0

    def test_invalid_objectives_rejected(self):
        with pytest.raises(ValueError):
            SloTracker(latency_ms=0)
        with pytest.raises(ValueError):
            SloTracker(latency_ms=10, target=1.0)


class TestSlowQueryLog:
    def test_record_and_load_round_trip(self, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl")
        log.record({"request_id": "req-1", "wall_ms": 300.0})
        log.record({"request_id": "req-2", "wall_ms": 400.0})
        records = load_slow_log(tmp_path / "slow.jsonl")
        assert [r["request_id"] for r in records] == ["req-1", "req-2"]

    def test_limit_keeps_newest(self, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl")
        for i in range(5):
            log.record({"request_id": f"req-{i}"})
        records = load_slow_log(tmp_path / "slow.jsonl", limit=2)
        assert [r["request_id"] for r in records] == ["req-3", "req-4"]

    def test_rotation_bounds_the_file(self, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl", max_records=10)
        for i in range(25):
            log.record({"request_id": f"req-{i}"})
        records = load_slow_log(tmp_path / "slow.jsonl")
        assert len(records) <= 10
        # The newest record always survives rotation.
        assert records[-1]["request_id"] == "req-24"

    def test_unparseable_lines_are_skipped(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path)
        log.record({"request_id": "req-1"})
        with open(path, "a") as handle:
            handle.write("{truncated garba\n")
        log.record({"request_id": "req-2"})
        records = load_slow_log(path)
        assert [r["request_id"] for r in records] == ["req-1", "req-2"]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_slow_log(tmp_path / "absent.jsonl") == []


class TestRegressionSentry:
    def _history_line(self, fast_total_s: float) -> dict:
        return {
            "benchmark": "E2",
            "lp_mode": "filtered",
            "jobs": 1,
            "executor": "compiled",
            "sizes": [4, 5],
            "fast_total_s": fast_total_s,
        }

    def _record(self, fast_s: float) -> dict:
        return {
            "benchmark": "E2",
            "sizes": [4, 5],
            "results": [{"n": 4, "fast_s": fast_s},
                        {"n": 5, "fast_s": fast_s}],
            "metadata": {
                "lp_mode": "filtered", "jobs": 1, "executor": "compiled",
            },
        }

    def _write_history(self, path, timings) -> None:
        with open(path, "w") as handle:
            for timing in timings:
                handle.write(json.dumps(self._history_line(timing)) + "\n")

    def test_unchanged_run_is_ok(self, tmp_path):
        history = tmp_path / "history.jsonl"
        self._write_history(history, [0.02, 0.021, 0.019])
        verdict = check_regression(self._record(0.010), str(history))
        assert verdict["status"] == "ok"
        assert verdict["samples"] == 3

    def test_synthetic_slowdown_is_flagged(self, tmp_path):
        history = tmp_path / "history.jsonl"
        self._write_history(history, [0.02, 0.021, 0.019])
        verdict = check_regression(self._record(0.5), str(history))
        assert verdict["status"] == "regression"
        assert verdict["ratio"] > 1.25

    def test_median_shrugs_off_one_noisy_baseline(self, tmp_path):
        history = tmp_path / "history.jsonl"
        # One wild outlier in the history must not mask a regression.
        self._write_history(history, [0.02, 5.0, 0.021, 0.019, 0.02])
        verdict = check_regression(self._record(0.5), str(history))
        assert verdict["status"] == "regression"

    def test_no_history_passes(self, tmp_path):
        verdict = check_regression(
            self._record(0.5), str(tmp_path / "absent.jsonl")
        )
        assert verdict["status"] == "no-history"
        assert verdict["samples"] == 0

    def test_mismatched_experiment_lines_ignored(self, tmp_path):
        history = tmp_path / "history.jsonl"
        lines = [self._history_line(0.02) for __ in range(3)]
        for line in lines:
            line["lp_mode"] = "exact"  # different knob: not comparable
        with open(history, "w") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
        verdict = check_regression(self._record(0.5), str(history))
        assert verdict["status"] == "no-history"

    def test_window_limits_the_baseline(self, tmp_path):
        history = tmp_path / "history.jsonl"
        # Old slow era followed by a fast era: window=2 must compare
        # against the recent fast runs only.
        self._write_history(history, [1.0, 1.0, 1.0, 0.02, 0.021])
        verdict = check_regression(
            self._record(0.5), str(history), window=2
        )
        assert verdict["status"] == "regression"

    def test_invalid_knobs_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            check_regression(self._record(0.1), "x", window=0)
        with pytest.raises(ValueError):
            check_regression(self._record(0.1), "x", tolerance=0.0)

    def test_load_history_skips_garbage(self, tmp_path):
        path = tmp_path / "history.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps(self._history_line(0.02)) + "\n")
            handle.write("not json\n\n")
            handle.write(json.dumps(self._history_line(0.03)) + "\n")
        assert len(load_history(str(path))) == 2


class TestPlanCostTotals:
    def test_sums_self_costs_over_the_tree(self):
        from repro.explain import plan_cost_totals

        plan = {
            "op": "root",
            "cost": {
                "self_wall_ms": 1.5,
                "self_counters": {"lp.solves": 2},
            },
            "children": [
                {
                    "op": "leaf",
                    "cost": {
                        "self_wall_ms": 0.5,
                        "self_counters": {"lp.solves": 3,
                                          "store.hits": 1},
                    },
                    "children": [],
                },
                {"op": "bare", "children": []},  # nodes without cost
            ],
        }
        totals = plan_cost_totals(plan)
        assert totals["self_wall_ms"] == pytest.approx(2.0)
        assert totals["self_counters"] == {"lp.solves": 5, "store.hits": 1}
