"""Tests for the RegPFP/PSPACE capture arm and the datalog parser."""

import pytest

from repro.errors import CaptureError, ParseError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.capture.machine import (
    machine_contains_one,
    machine_parity_of_ones,
)
from repro.capture.pspace import (
    binary_counter_machine,
    pspace_capture_run,
)
from repro.datalog.parser import parse_program, parse_rule


def db(text: str, arity: int = 1) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


class TestBinaryCounter:
    def test_counts_exponentially(self):
        machine = binary_counter_machine()
        # A word starting with m zeros runs ~2^m increments.
        short_word = "00#"
        long_word = "000000#"
        __, short_steps = machine.run(short_word, 10**5)
        accepted, long_steps = machine.run(long_word, 10**5)
        assert accepted
        assert long_steps > 8 * short_steps

    def test_accepts_trivially_without_digits(self):
        machine = binary_counter_machine()
        assert machine.accepts("#", 10)


class TestPSpaceCapture:
    def test_agreement_on_simple_machines(self):
        for machine in (machine_contains_one(), machine_parity_of_ones()):
            for database in (db("0 < x0 & x0 < 1"),
                             db("(0 <= x0 & x0 <= 1) | x0 = 3")):
                result = pspace_capture_run(machine, database)
                assert result.agree

    def test_counter_agreement_and_regime(self):
        """A big first coordinate drives a run longer than the cell
        count — the regime only PFP (not time-stamped LFP) covers."""
        machine = binary_counter_machine()
        # numerator 10000000: an 8-digit block starting near zero in the
        # machine's LSB-first reading, so ~2^8 increments happen in
        # constant space.
        database = db("x0 = 128")
        result = pspace_capture_run(machine, database)
        assert result.agree
        assert result.pfp_accepts
        assert result.run_exceeded_ptime_addressing, (
            result.pfp_stages, result.space_cells
        )

    def test_small_coordinate_runs_fast(self):
        machine = binary_counter_machine()
        database = db("x0 = 1")
        result = pspace_capture_run(machine, database)
        assert result.agree

    def test_stage_budget_enforced(self):
        machine = binary_counter_machine()
        database = db("x0 = 128")
        with pytest.raises(CaptureError):
            pspace_capture_run(machine, database, max_stages=10)

    def test_space_bound_checked(self):
        machine = machine_contains_one()
        database = db("(0 <= x0 & x0 <= 1) | x0 = 3")
        with pytest.raises(CaptureError):
            pspace_capture_run(machine, database, arity=1)


class TestDatalogParser:
    def test_parse_rule(self):
        rule = parse_rule("Reach(y) :- Reach(x), S(y), y - x <= 1.")
        assert rule.head.predicate == "Reach"
        assert len(rule.body) == 2
        assert rule.constraint is not None

    def test_parse_program_runs(self):
        from fractions import Fraction as F

        from repro.datalog import evaluate_program

        program = parse_program(
            """
            % reachability within unit steps
            Reach(x) :- S(x), x = 0.
            Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.
            """
        )
        outcome = evaluate_program(program, db("0 <= x0 & x0 <= 2"))
        assert outcome.converged
        assert outcome["Reach"].contains((F(2),))

    def test_constraint_only_body(self):
        rule = parse_rule("Unit(x) :- 0 <= x, x <= 1.")
        assert rule.body == ()
        assert rule.constraint is not None

    def test_errors(self):
        for bad in [
            "Reach(x)",                    # no ':-'
            "reach(x) :- S(x).",           # lowercase head
            "Reach(x) :- .",               # empty body
        ]:
            with pytest.raises(ParseError):
                parse_rule(bad)
        with pytest.raises(ParseError):
            parse_program("% only a comment\n")

    def test_multiple_constraints_conjoined(self):
        from fractions import Fraction as F

        rule = parse_rule("Box(x) :- S(x), x >= 0, x <= 1.")
        assert rule.constraint is not None
        assert rule.constraint.evaluate({"x": F(1, 2)})
        assert not rule.constraint.evaluate({"x": F(2)})