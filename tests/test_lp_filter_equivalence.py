"""The certified float filter is observationally exact.

Property/fuzz suite for :mod:`repro.geometry.fastlp` (the tentpole's
correctness criterion): on seeded random mixed strict/non-strict
systems — including equality rows, duplicated rows, near-parallel rows
perturbed by 10⁻⁹ (inside the float tier's epsilon band) and tiny
scaled offsets — the filtered tier must

* report exactly the same feasibility status as the exact rational
  simplex, and
* return witnesses that satisfy every original constraint under exact
  ``Fraction`` arithmetic (no float ever decides an answer).

A final test pins the end-to-end consequence: arrangements built in
both modes are byte-identical, which is what lets ``filtered`` be the
default without perturbing any paper figure.
"""

import random
from fractions import Fraction

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import fastlp
from repro.geometry.fourier_motzkin import LinearConstraint, Rel
from repro.geometry.simplex import (
    clear_feasibility_cache,
    strict_feasible_point,
)
from repro.obs.metrics import get_registry

F = Fraction

SEED = 20260806
RELS = (Rel.LE, Rel.LT, Rel.LT, Rel.EQ)


def random_system(rng: random.Random, dim: int) -> list[LinearConstraint]:
    """One random mixed system, biased toward the filter's hard cases."""
    rows = []
    for __ in range(rng.randint(1, dim + 5)):
        coeffs = tuple(F(rng.randint(-5, 5)) for __ in range(dim))
        rhs = F(rng.randint(-10, 10), rng.choice((1, 1, 1, 2, 3, 7)))
        rows.append(LinearConstraint(coeffs, rng.choice(RELS), rhs))
    roll = rng.random()
    base = rows[rng.randrange(len(rows))]
    if roll < 0.25:
        # Exact duplicate: degenerate but harmless.
        rows.append(base)
    elif roll < 0.5:
        # Near-parallel row: nudge one coefficient by 1e-9 so the float
        # tier sees two rows whose angle is below its tolerances.
        nudged = tuple(
            c + F(1, 10**9) if index == 0 else c
            for index, c in enumerate(base.coeffs)
        )
        rows.append(LinearConstraint(nudged, base.rel, base.rhs))
    elif roll < 0.65:
        # Same hyperplane, offset shifted by 1e-9: a sliver system whose
        # feasibility genuinely depends on digits floats cannot resolve.
        rows.append(
            LinearConstraint(base.coeffs, base.rel, base.rhs + F(1, 10**9))
        )
    return rows


def solve_both(rows, dim):
    """(exact_point, filtered_point) with a cold memo for each tier."""
    with fastlp.lp_mode("exact"):
        clear_feasibility_cache()
        exact = strict_feasible_point(rows, dim)
    with fastlp.lp_mode("filtered"):
        clear_feasibility_cache()
        filtered = strict_feasible_point(rows, dim)
    clear_feasibility_cache()
    return exact, filtered


def assert_equivalent(rows, dim):
    exact, filtered = solve_both(rows, dim)
    assert (exact is None) == (filtered is None), (
        f"status mismatch on {rows}: exact={exact} filtered={filtered}"
    )
    if filtered is not None:
        assert all(isinstance(v, Fraction) for v in filtered)
        assert all(row.satisfied_by(filtered) for row in rows), (
            f"filtered witness {filtered} violates {rows}"
        )
    if exact is not None:
        assert all(row.satisfied_by(exact) for row in rows)


class TestSeededFuzz:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_filtered_agrees_with_exact(self, dim):
        rng = random.Random(SEED + dim)
        for __ in range(150):
            assert_equivalent(random_system(rng, dim), dim)

    def test_filter_actually_engages(self):
        """The fuzz load must exercise the float tier, not dodge it."""
        registry = get_registry()
        rng = random.Random(SEED)
        before = registry.get("lp.filter_hits")
        with fastlp.lp_mode("filtered"):
            for __ in range(40):
                clear_feasibility_cache()
                strict_feasible_point(random_system(rng, 2), 2)
        clear_feasibility_cache()
        assert registry.get("lp.filter_hits") > before

    def test_fallbacks_are_counted_not_fatal(self):
        """Near-ties may fall back; the answer must still be exact."""
        rng = random.Random(SEED + 99)
        registry = get_registry()
        hits = registry.get("lp.filter_hits")
        fallbacks = registry.get("lp.filter_fallbacks")
        for __ in range(60):
            assert_equivalent(random_system(rng, 3), 3)
        decided = registry.get("lp.filter_hits") - hits
        fell_back = registry.get("lp.filter_fallbacks") - fallbacks
        assert decided > 0
        assert fell_back >= 0          # never negative, any value legal


class TestEpsilonBandStress:
    """Hand-built systems whose truth lives below float resolution."""

    def test_sliver_strictly_feasible(self):
        # 0 < x and x < 1e-9: open but astronomically thin.
        rows = [
            LinearConstraint((F(1),), Rel.LT, F(1, 10**9)),
            LinearConstraint((F(-1),), Rel.LT, F(0)),
        ]
        assert_equivalent(rows, 1)
        __, filtered = solve_both(rows, 1)
        assert filtered is not None

    def test_sliver_infeasible_by_a_hair(self):
        # x <= a and x >= a + 1e-12 with a strict row in between.
        a = F(1, 3)
        rows = [
            LinearConstraint((F(1), F(0)), Rel.LE, a),
            LinearConstraint((F(-1), F(0)), Rel.LE, -(a + F(1, 10**12))),
            LinearConstraint((F(0), F(1)), Rel.LT, F(1)),
        ]
        assert_equivalent(rows, 2)
        __, filtered = solve_both(rows, 2)
        assert filtered is None

    def test_equality_pinning_with_huge_denominators(self):
        # Equalities pin x exactly; strict rows leave a 1e-15 margin.
        pin = F(10**15 + 1, 3 * 10**15)
        rows = [
            LinearConstraint((F(1), F(0)), Rel.EQ, pin),
            LinearConstraint((F(0), F(1)), Rel.LT, pin + F(1, 10**15)),
            LinearConstraint((F(0), F(-1)), Rel.LT, -pin + F(1, 10**15)),
        ]
        assert_equivalent(rows, 2)

    def test_near_parallel_wedge(self):
        # Two almost-identical half-planes whose wedge is feasible only
        # because the 1e-9 rotation opens a sliver.
        rows = [
            LinearConstraint((F(1), F(1)), Rel.LT, F(1)),
            LinearConstraint((F(-1) - F(1, 10**9), F(-1)), Rel.LT, F(-1)),
        ]
        assert_equivalent(rows, 2)

    def test_contradictory_duplicates(self):
        rows = [
            LinearConstraint((F(2), F(-3)), Rel.LT, F(5)),
            LinearConstraint((F(-2), F(3)), Rel.LE, F(-5)),
        ]
        assert_equivalent(rows, 2)
        __, filtered = solve_both(rows, 2)
        assert filtered is None


@settings(max_examples=60, deadline=None)
@given(
    st.integers(2, 3),
    st.lists(
        st.tuples(
            st.lists(st.integers(-6, 6), min_size=3, max_size=3),
            st.sampled_from(["le", "lt", "eq"]),
            st.fractions(
                min_value=-8, max_value=8, max_denominator=5
            ),
        ),
        min_size=1,
        max_size=6,
    ),
)
def test_hypothesis_equivalence(dim, raw_rows):
    rel_of = {"le": Rel.LE, "lt": Rel.LT, "eq": Rel.EQ}
    rows = [
        LinearConstraint(
            tuple(F(c) for c in coeffs[:dim]), rel_of[rel], F(rhs)
        )
        for coeffs, rel, rhs in raw_rows
    ]
    assert_equivalent(rows, dim)


class TestModesAreIndistinguishable:
    def test_arrangement_face_structure_identical(self):
        """Paper figures cannot depend on the mode (acceptance criterion)."""
        from repro.arrangement.builder import build_arrangement
        from repro.geometry.hyperplane import Hyperplane

        planes = [
            Hyperplane.make([2 * i, -1], i * i) for i in range(1, 7)
        ]

        def census(mode):
            with fastlp.lp_mode(mode):
                clear_feasibility_cache()
                arrangement = build_arrangement(
                    hyperplanes=planes, dimension=2
                )
            clear_feasibility_cache()
            # Witness *samples* may differ between tiers (both are valid
            # interior points); the face structure itself may not.
            return [
                (face.signs, face.dimension, face.in_relation)
                for face in arrangement.faces
            ]

        assert census("exact") == census("filtered")

    def test_mode_helpers_round_trip(self):
        assert fastlp.get_lp_mode() in fastlp.LP_MODES
        with fastlp.lp_mode("exact"):
            assert fastlp.get_lp_mode() == "exact"
            with fastlp.lp_mode(None):       # None = no-op nesting
                assert fastlp.get_lp_mode() == "exact"
            with fastlp.lp_mode("filtered"):
                assert fastlp.get_lp_mode() == "filtered"
            assert fastlp.get_lp_mode() == "exact"
        with pytest.raises(ValueError):
            fastlp.set_lp_mode("approximate")
