"""Tests for the region-logic AST and parser."""

import pytest

from repro.errors import FormulaError, ParseError
from repro.logic.ast import (
    Adj,
    DTC,
    ExistsElem,
    ExistsRegion,
    FixKind,
    Fixpoint,
    ForallElem,
    ForallRegion,
    InRegion,
    LinearAtom,
    RBit,
    RNot,
    RegionEq,
    RelationAtom,
    SetAtom,
    SubsetAtom,
    TC,
    classify_language,
    polarity_of_set_var,
    reg_conjunction,
)
from repro.logic.parser import parse_query


CONN = (
    "forall x1, y1, x2, y2. (S(x1, y1) & S(x2, y2)) -> "
    "(exists RX, RY. (x1, y1) in RX & (x2, y2) in RY & "
    "[lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
    "(exists Z. M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](RX, RY))"
)


class TestParserBasics:
    def test_mixed_quantifier_sorts(self):
        f = parse_query("exists x, R. (x) in R & x > 0")
        assert isinstance(f, ExistsElem)
        assert isinstance(f.body, ExistsRegion)

    def test_case_convention(self):
        f = parse_query("forall X. exists y. (y) in X")
        assert isinstance(f, ForallRegion)
        assert isinstance(f.body, ExistsElem)

    def test_in_region_tuple(self):
        f = parse_query("(x, y + 1) in R")
        assert isinstance(f, InRegion)
        assert len(f.args) == 2
        assert f.region == "R"

    def test_in_region_unparenthesised(self):
        f = parse_query("x in R")
        assert isinstance(f, InRegion)

    def test_relation_atom(self):
        f = parse_query("S(x, 2*y - 1)")
        assert isinstance(f, RelationAtom)
        assert f.name == "S"

    def test_set_atom(self):
        f = parse_query("exists R, Z. M(R, Z)")
        body = f.body.body
        assert isinstance(body, SetAtom)
        assert body.args == ("R", "Z")

    def test_relation_atom_with_region_like_start_falls_back(self):
        # First arg is a bare region name but second is a term: this is a
        # parse error for a relation atom (regions can't be terms).
        with pytest.raises(ParseError):
            parse_query("S(R, x + 1)")

    def test_adjacency_and_subset(self):
        f = parse_query("adj(R, Rp) & sub(R, S)")
        assert isinstance(f.operands[0], Adj)
        assert isinstance(f.operands[1], SubsetAtom)

    def test_region_equality(self):
        assert isinstance(parse_query("exists R, Z. R = Z").body.body,
                          RegionEq)
        neq = parse_query("exists R, Z. R != Z").body.body
        assert isinstance(neq, RNot)

    def test_linear_atoms_and_chains(self):
        f = parse_query("0 <= x < 1")
        assert isinstance(f, type(reg_conjunction([f])))
        atoms = f.operands
        assert all(isinstance(a, LinearAtom) for a in atoms)

    def test_lfp_parse(self):
        f = parse_query(
            "exists RX, RY. [lfp M(R, Rp). R = Rp](RX, RY)"
        )
        fix = f.body.body
        assert isinstance(fix, Fixpoint)
        assert fix.kind is FixKind.LFP
        assert fix.bound_vars == ("R", "Rp")
        assert fix.args == ("RX", "RY")

    def test_ifp_pfp_parse(self):
        for kind, expected in (("ifp", FixKind.IFP), ("pfp", FixKind.PFP)):
            f = parse_query(
                f"exists RX. [{kind} M(R). M(R) | sub(R, S)](RX)"
            )
            assert f.body.kind is expected

    def test_tc_parse(self):
        f = parse_query("exists X, Y. [tc (R) -> (Rp). adj(R, Rp)](X; Y)")
        tc = f.body.body
        assert isinstance(tc, TC)
        assert tc.left_args == ("X",)
        assert tc.right_args == ("Y",)

    def test_dtc_parse(self):
        f = parse_query("exists X, Y. [dtc R -> Rp. adj(R, Rp)](X; Y)")
        assert isinstance(f.body.body, DTC)

    def test_rbit_parse(self):
        f = parse_query(
            "exists Rn, Rd, P. [rbit x. (x) in P](Rn, Rd)"
        )
        rbit = f.body.body.body
        assert isinstance(rbit, RBit)
        assert rbit.numerator == "Rn"
        assert rbit.denominator == "Rd"

    def test_conn_query_parses(self):
        f = parse_query(CONN)
        assert isinstance(f, ForallElem)
        assert classify_language(f) == "RegLFP"

    def test_parse_errors(self):
        bad_inputs = [
            "exists R. R",                     # bare region var
            "[lfp M(R). M(R)](x)",             # lowercase arg
            "[tc (R) -> (Rp). adj(R, Rp)](X)",  # missing ';'
            "R + 1 > 0",                       # region in a term
            "adj(x, y)",                       # lowercase adj args
            "exists lfp. true",                # keyword as variable
            "S(x,)",
        ]
        for text in bad_inputs:
            with pytest.raises(ParseError):
                parse_query(text)

    def test_roundtrip_str(self):
        f = parse_query(CONN)
        g = parse_query(str(f))
        assert classify_language(g) == "RegLFP"
        assert g.free_element_vars() == f.free_element_vars() == frozenset()


class TestAstValidation:
    def test_lfp_positivity_enforced(self):
        with pytest.raises(FormulaError):
            parse_query("exists X. [lfp M(R). !M(R)](X)")
        # IFP does not require positivity.
        parse_query("exists X. [ifp M(R). !M(R)](X)")
        parse_query("exists X. [pfp M(R). !M(R)](X)")

    def test_double_negation_is_positive(self):
        f = parse_query("exists X. [lfp M(R). !(!M(R))](X)")
        assert isinstance(f.body, Fixpoint)

    def test_fixpoint_free_element_vars_rejected(self):
        with pytest.raises(FormulaError):
            parse_query("exists X. [lfp M(R). (x) in R](X)")

    def test_fixpoint_stray_region_vars_rejected(self):
        with pytest.raises(FormulaError):
            parse_query("exists X, W. [lfp M(R). adj(R, W)](X)")

    def test_fixpoint_arity_mismatch(self):
        with pytest.raises(FormulaError):
            parse_query("exists X. [lfp M(R, Rp). R = Rp](X)")

    def test_tc_distinct_vars(self):
        with pytest.raises(FormulaError):
            parse_query("exists X, Y. [tc (R) -> (R). true](X; Y)")

    def test_rbit_body_needs_one_element_var(self):
        with pytest.raises(FormulaError):
            parse_query("exists Rn, Rd. [rbit x. true](Rn, Rd)")
        with pytest.raises(FormulaError):
            parse_query("exists Rn, Rd. [rbit x. x + y > 0](Rn, Rd)")

    def test_free_variable_computation(self):
        f = parse_query("S(x, y) & (exists z. z > x) & (y) in R")
        assert f.free_element_vars() == {"x", "y"}
        assert f.free_region_vars() == {"R"}

    def test_polarity(self):
        f = parse_query("exists Z. M(R, Z) & !N(R, Z)").body
        assert polarity_of_set_var(f, "M") == {True}
        assert polarity_of_set_var(f, "N") == {False}
        assert polarity_of_set_var(f, "K") == set()

    def test_classify_language(self):
        assert classify_language(parse_query("S(x, y)")) == "RegFO"
        assert classify_language(
            parse_query("exists X, Y. [tc R -> Rp. adj(R, Rp)](X; Y)")
        ) == "RegTC"
        assert classify_language(
            parse_query("exists X, Y. [dtc R -> Rp. adj(R, Rp)](X; Y)")
        ) == "RegDTC"
        assert classify_language(
            parse_query("exists X. [pfp M(R). sub(R, S)](X)")
        ) == "RegPFP"
