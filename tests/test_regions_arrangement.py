"""Tests for arrangement-backed regions and the canonical ordering."""

from fractions import Fraction

import pytest

from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.regions.arrangement_regions import ArrangementDecomposition
from repro.regions.nc1 import NC1Decomposition
from repro.regions.ordering import region_sort_key, sort_regions

F = Fraction


def triangle() -> ConstraintRelation:
    return ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )


@pytest.fixture(scope="module")
def decomposition() -> ArrangementDecomposition:
    return ArrangementDecomposition(triangle())


class TestArrangementDecomposition:
    def test_region_count(self, decomposition):
        assert len(decomposition) == 19
        assert decomposition.count_by_dimension() == {2: 7, 1: 9, 0: 3}

    def test_indices_canonical_and_dense(self, decomposition):
        assert [r.index for r in decomposition.regions] == list(range(19))
        keys = [region_sort_key(r) for r in decomposition.regions]
        assert keys == sorted(keys)

    def test_bounded_before_unbounded(self, decomposition):
        flags = [r.is_bounded() for r in decomposition.regions]
        first_unbounded = flags.index(False)
        assert all(not b for b in flags[first_unbounded:])

    def test_zero_dim_lex_ordered(self, decomposition):
        zero = decomposition.zero_dimensional()
        samples = [r.sample_point() for r in zero]
        assert samples == sorted(samples)
        # And they come first among bounded regions in the global order.
        assert [r.index for r in zero] == [0, 1, 2]

    def test_membership_and_locate(self, decomposition):
        region = decomposition.locate((F(1, 4), F(1, 4)))
        assert region.dimension == 2
        assert region.contains((F(1, 4), F(1, 4)))
        assert decomposition.covers((F(10), F(10)))

    def test_every_point_in_exactly_one_region(self, decomposition):
        probes = [
            (F(0), F(0)), (F(1, 2), F(0)), (F(1, 4), F(1, 4)),
            (F(2), F(2)), (F(-1), F(5)),
        ]
        for probe in probes:
            assert len(decomposition.regions_containing(probe)) == 1

    def test_subset_of_relation_uses_face_bit(self, decomposition):
        inside = [
            r.index for r in decomposition
            if decomposition.region_subset_of_relation(r.index)
        ]
        assert len(inside) == 7  # interior + 3 edges + 3 vertices

    def test_adjacency_matches_dimensions(self, decomposition):
        for left in decomposition:
            for right in decomposition:
                if decomposition.adjacent(left.index, right.index):
                    assert left.dimension != right.dimension

    def test_adjacency_cached_and_symmetric(self, decomposition):
        for left in list(decomposition)[:6]:
            for right in list(decomposition)[:6]:
                assert decomposition.adjacent(left.index, right.index) == \
                    decomposition.adjacent(right.index, left.index)

    def test_vertex_adjacent_to_incident_edges(self, decomposition):
        origin = decomposition.locate((F(0), F(0)))
        adjacent = [
            r for r in decomposition
            if decomposition.adjacent(origin.index, r.index)
        ]
        # 2 lines meet at the origin: 4 edges + 4 sectors touch it.
        assert len([r for r in adjacent if r.dimension == 1]) == 4
        assert len([r for r in adjacent if r.dimension == 2]) == 4

    def test_defining_formula(self, decomposition):
        region = decomposition.locate((F(1, 4), F(1, 4)))
        rel = region.as_relation(("x", "y"))
        assert rel.contains((F(1, 8), F(1, 8)))
        assert not rel.contains((F(5), F(5)))

    def test_region_str(self, decomposition):
        assert "dim=" in str(decomposition.regions[0])

    def test_cross_type_closure_rejected(self, decomposition):
        nc1 = NC1Decomposition(triangle())
        with pytest.raises(TypeError):
            decomposition.regions[0].closure_contains_region(
                nc1.regions[0]
            )


class TestOrderingGeneric:
    def test_sort_regions_deterministic(self, decomposition):
        regions = list(decomposition.regions)
        import random

        shuffled = regions[:]
        random.Random(7).shuffle(shuffled)
        assert [r.index for r in sort_regions(shuffled)] == [
            r.index for r in regions
        ]

    def test_nc1_ordering_same_scheme(self):
        decomposition = NC1Decomposition(triangle())
        keys = [region_sort_key(r) for r in decomposition.regions]
        assert keys == sorted(keys)
        flags = [r.is_bounded() for r in decomposition.regions]
        assert all(flags)  # triangle is bounded: all regions bounded
