"""Differential fuzzing of incremental view maintenance.

The maintained write path (:meth:`QueryEngine.apply_delta`) must be
indistinguishable from throwing everything away and rebuilding: after
any interleaving of inserts, retracts and queries, the maintained
engine's answers are **byte-identical** to a fresh cold engine's on the
same database version, the maintained database's fingerprint equals
the directly-constructed one, and the maintained arrangement is
combinatorially identical to a batch rebuild.

Hypothesis generates the interleavings; the decorated ``@example``
corpus pins previously interesting shapes (write/undo pairs, duplicate
disjuncts, retract-to-empty, invalid retracts) as permanent
regressions.  ``REPRO_IVM_EXAMPLES`` scales the number of generated
interleavings per (executor, lp_mode) cell — CI raises it so each
executor sees well over a hundred interleavings per run.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.arrangement.builder import build_arrangement
from repro.config import EngineConfig
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.engine import EngineCache, QueryEngine, database_fingerprint
from repro.errors import DeltaError
from repro.incremental import formula_from_disjuncts, make_delta
from repro.obs.metrics import MetricsRegistry

#: Generated interleavings per (executor, lp_mode) cell.  CI sets the
#: environment knob high enough that each executor sees >= 200
#: interleavings across its two lp_mode cells.
MAX_EXAMPLES = int(os.environ.get("REPRO_IVM_EXAMPLES", "15"))

#: Candidate disjuncts: a chain of unit intervals (adjacent pieces
#: share endpoint hyperplanes — the interesting case for plane-level
#: maintenance) plus two detached pieces.
PIECES = tuple(
    f"({a} <= x0 & x0 <= {a + 1})" for a in range(4)
) + ("(x0 <= -2)", "(6 <= x0 & x0 <= 8)")

#: Query mix: open formula, constrained, and a sentence.
QUERIES = (
    "S(x)",
    "S(x) & x < 3",
    "exists x. (S(x) & x > 1)",
)

_ops = st.lists(
    st.tuples(
        st.sampled_from(("insert", "retract", "query")),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=2,
    max_size=8,
)


def _signature(arrangement):
    return sorted(
        (face.signs, face.dimension, face.in_relation)
        for face in arrangement.faces
    )


def _fresh_engine(database, config):
    """A cold engine with private caches — the rebuild oracle."""
    return QueryEngine(
        database,
        cache=EngineCache(metrics=MetricsRegistry()),
        config=config,
    )


@pytest.mark.parametrize("lp_mode", ("exact", "filtered"))
@pytest.mark.parametrize("executor", ("interpreted", "compiled"))
@settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_ops)
# Write/undo pair, then query.
@example(ops=[("insert", 1), ("retract", 1), ("query", 0)])
# Duplicate disjunct: a multiset, retract removes one occurrence.
@example(ops=[("insert", 1), ("insert", 1), ("retract", 1), ("query", 1)])
# Retract the seed piece down to the empty relation, then query.
@example(ops=[("retract", 0), ("query", 0), ("insert", 2), ("query", 2)])
# Invalid retract (piece absent) must be rejected atomically.
@example(ops=[("retract", 5), ("insert", 5), ("retract", 5), ("query", 0)])
def test_maintained_engine_matches_fresh_oracle(executor, lp_mode, ops):
    """Any insert/retract/query interleaving: maintained ≡ rebuilt."""
    config = EngineConfig(executor=executor, lp_mode=lp_mode)
    seed = parse_formula(PIECES[0])
    engine = _fresh_engine(
        ConstraintDatabase.from_formula(seed, 1), config
    )
    current = [seed]  # the model: S's disjunct multiset, in order
    for kind, index in ops:
        if kind == "query":
            text = QUERIES[index % len(QUERIES)]
            maintained = engine.evaluate(text)
            expected = _fresh_engine(engine.database, config).evaluate(
                text
            )
            assert maintained.variables == expected.variables
            assert str(maintained.formula) == str(expected.formula)
            assert maintained.is_empty() == expected.is_empty()
            continue
        piece = parse_formula(PIECES[index % len(PIECES)])
        if kind == "retract" and piece not in current:
            before = engine.fingerprint
            with pytest.raises(DeltaError):
                engine.apply_delta(make_delta(("retract", "S", piece)))
            assert engine.fingerprint == before, "rejected writes are no-ops"
            continue
        report = engine.apply_delta(make_delta((kind, "S", piece)))
        if kind == "insert":
            current.append(piece)
        else:
            current.remove(piece)
        assert report.child == engine.fingerprint

    # The maintained database is structurally the directly-built one.
    expected_db = ConstraintDatabase.make({
        "S": ConstraintRelation.make(
            ("x0",), formula_from_disjuncts(tuple(current))
        )
    })
    assert engine.fingerprint == database_fingerprint(expected_db)

    # The maintained arrangement (seeded into the engine cache by the
    # write path) is combinatorially identical to a batch rebuild.
    spatial = engine.database.relation("S")
    maintained_arr = engine.cache.arrangement(spatial)
    batch_arr = build_arrangement(spatial)
    assert maintained_arr.hyperplanes == batch_arr.hyperplanes
    assert _signature(maintained_arr) == _signature(batch_arr)


@pytest.mark.parametrize("executor", ("interpreted", "compiled"))
@settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    batch=st.lists(
        st.tuples(
            st.sampled_from(("insert", "retract")),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=5,
    )
)
@example(batch=[("insert", 2), ("retract", 2), ("retract", 0)])
@example(batch=[("retract", 3)])
def test_batched_delta_is_atomic(executor, batch):
    """A multi-op delta lands whole or not at all.

    Valid batches produce exactly the database the op-by-op model
    predicts; a batch whose ops are individually invalid midway leaves
    the engine byte-identical to its pre-write state.
    """
    config = EngineConfig(executor=executor)
    seed = parse_formula(PIECES[0])
    engine = _fresh_engine(
        ConstraintDatabase.from_formula(seed, 1), config
    )
    before_print = engine.fingerprint
    before_answer = str(engine.evaluate("S(x)").formula)

    current = [seed]
    valid = True
    for action, index in batch:
        piece = parse_formula(PIECES[index % len(PIECES)])
        if action == "insert":
            current.append(piece)
        elif piece in current:
            current.remove(piece)
        else:
            valid = False
            break
    delta = make_delta(*(
        (action, "S", PIECES[index % len(PIECES)])
        for action, index in batch
    ))

    if not valid:
        with pytest.raises(DeltaError):
            engine.apply_delta(delta)
        assert engine.fingerprint == before_print
        assert str(engine.evaluate("S(x)").formula) == before_answer
        return

    engine.apply_delta(delta)
    expected_db = ConstraintDatabase.make({
        "S": ConstraintRelation.make(
            ("x0",), formula_from_disjuncts(tuple(current))
        )
    })
    assert engine.fingerprint == database_fingerprint(expected_db)
    maintained = engine.evaluate("S(x)")
    expected = _fresh_engine(expected_db, config).evaluate("S(x)")
    assert str(maintained.formula) == str(expected.formula)
