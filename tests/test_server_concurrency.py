"""Concurrency contracts: single-flight builds, quotas, shared store.

The three guarantees the server architecture rests on:

* a thundering herd of identical requests computes its arrangement
  **exactly once** (single-flight, at the cache layer and end-to-end
  over HTTP);
* admission control rejects deterministically (429 with a retry hint,
  503 with a queue depth) instead of degrading;
* one :class:`DiskStore` shared by independent engines under
  interleaved load/save stays uncorrupted and serves identical faces.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import ConstraintDatabase, QueryEngine, parse_formula
from repro.config import EngineConfig
from repro.engine import EngineCache
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.server import (
    AdmissionController,
    ConstraintService,
    Overloaded,
    QuotaExceeded,
    ServerThread,
    TokenBucket,
    run_load,
)


def _db(text: str = "(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"):
    return ConstraintDatabase.from_formula(parse_formula(text), arity=1)


# ----------------------------------------------------------------------
# Single-flight
# ----------------------------------------------------------------------
def test_cache_single_flight_builds_extension_once():
    """N threads, one cache, one database: one arrangement build."""
    workers = 8
    cache = EngineCache(metrics=MetricsRegistry())
    database = _db()
    engines = [
        QueryEngine(database, cache=cache, config=EngineConfig())
        for _ in range(workers)
    ]
    barrier = threading.Barrier(workers)
    registry = get_registry()
    builds_before = registry.get("arrangement.builds")

    def build(engine: QueryEngine):
        barrier.wait()
        return engine.extension

    with ThreadPoolExecutor(max_workers=workers) as pool:
        extensions = list(pool.map(build, engines))

    assert registry.get("arrangement.builds") - builds_before == 1
    stats = cache.stats()
    assert stats["extension_misses"] == 1, "exactly one thread built"
    assert stats["extension_hits"] == workers - 1
    assert all(ext is extensions[0] for ext in extensions), (
        "every waiter receives the one shared extension object"
    )


def test_http_single_flight_builds_extension_once():
    """The ISSUE contract, end-to-end: N concurrent identical queries
    over HTTP increment ``arrangement.builds`` exactly once."""
    workers = 6
    service = ConstraintService(
        {"demo": _db()}, max_concurrent=workers,
        metrics=MetricsRegistry(),
    )
    registry = get_registry()
    builds_before = registry.get("arrangement.builds")
    with ServerThread(service) as server:
        results = run_load(
            server.port, [{"query": "S(x0)"}] * workers,
            concurrency=workers,
        )
    assert [r["status"] for r in results] == [200] * workers
    assert registry.get("arrangement.builds") - builds_before == 1
    built = [r["body"]["build"] for r in results]
    assert built.count("built") == 1, "exactly one request paid the build"
    assert set(built) <= {"built", "coalesced", "warm"}


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_token_bucket_refills_at_rate():
    clock = [0.0]
    bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: clock[0])
    assert bucket.try_acquire() and bucket.try_acquire()
    assert not bucket.try_acquire(), "burst exhausted"
    assert bucket.retry_after_s() == pytest.approx(0.5)
    clock[0] += 0.5  # one token refilled at 2 tokens/s
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_quota_rejection_is_per_tenant():
    clock = [0.0]
    controller = AdmissionController(
        quota_rate=1.0, quota_burst=1, metrics=MetricsRegistry(),
        clock=lambda: clock[0],
    )

    async def drive():
        async with controller.admit("team-a"):
            pass
        with pytest.raises(QuotaExceeded) as caught:
            async with controller.admit("team-a"):
                pass
        assert caught.value.status == 429
        assert caught.value.retry_after_s > 0
        # team-b has its own bucket and is unaffected.
        async with controller.admit("team-b"):
            pass

    asyncio.run(drive())
    stats = controller.stats()
    assert stats["rejected_quota"] == 1
    assert stats["admitted"] == 2


def test_overload_rejection_reports_queue_depth():
    controller = AdmissionController(
        max_concurrent=1, max_queue=0, metrics=MetricsRegistry(),
    )

    async def drive():
        release = asyncio.Event()

        async def occupant():
            async with controller.admit():
                await release.wait()

        task = asyncio.create_task(occupant())
        await asyncio.sleep(0)  # let the occupant take the slot
        with pytest.raises(Overloaded) as caught:
            async with controller.admit():
                pass
        assert caught.value.status == 503
        release.set()
        await task

    asyncio.run(drive())
    assert controller.stats()["rejected_overload"] == 1


def test_http_quota_rejection_returns_structured_429():
    service = ConstraintService(
        {"demo": _db()},
        quota_rate=0.001, quota_burst=1,  # one request, then starve
        metrics=MetricsRegistry(),
    )
    with ServerThread(service) as server:
        results = run_load(
            server.port, [{"query": "S(x0)"}] * 4, concurrency=1,
            tenant="greedy",
        )
    statuses = [r["status"] for r in results]
    assert statuses[0] == 200
    assert statuses[1:] == [429] * 3
    rejected = results[1]["body"]["error"]
    assert rejected["code"] == "quota_exceeded"
    assert rejected["retry_after_s"] > 0


# ----------------------------------------------------------------------
# Shared disk store
# ----------------------------------------------------------------------
def test_disk_store_shared_by_two_engines_interleaved(tmp_path):
    """Independent engines over one store: no corruption, same faces."""
    from repro.store import resolve_store

    store = resolve_store(str(tmp_path / "store"))
    database = _db()
    queries = [
        "S(x0)",
        "exists y. S(y) & x0 - y <= 1 & y - x0 <= 1",
        "forall x. S(x) -> x < 5",
    ]

    def worker(_index: int):
        # Each worker is its own engine with a private in-memory cache;
        # only the disk store is shared.
        engine = QueryEngine(
            database,
            cache=EngineCache(metrics=MetricsRegistry()),
            config=EngineConfig(cache_dir=store),
        )
        answers = [str(engine.evaluate(q).formula) for q in queries]
        return engine, answers

    with ThreadPoolExecutor(max_workers=4) as pool:
        outcomes = list(pool.map(worker, range(4)))

    baseline_answers = outcomes[0][1]
    for __, answers in outcomes[1:]:
        assert answers == baseline_answers

    stats = store.stats()
    assert stats["corrupt_entries"] == 0
    assert stats["writes"] >= 1
    # Byte-identical faces: every engine's extension describes the same
    # decomposition, region for region.
    signatures = {
        tuple(str(region) for region in engine.extension.regions)
        for engine, __ in outcomes
    }
    assert len(signatures) == 1


# ----------------------------------------------------------------------
# The write path (/v1/update)
# ----------------------------------------------------------------------
def test_http_updates_never_tear_concurrent_reads():
    """Readers racing a sequence of writes only ever see whole
    versions: every response fingerprint is a version the database
    actually was, and its answer is byte-identical to a cold engine's
    answer for exactly that version."""
    from repro.engine import database_fingerprint
    from repro.incremental import apply_delta, make_delta
    from repro.server.loadgen import post_json

    service = ConstraintService(
        {"demo": _db()},
        quota_rate=100000.0, quota_burst=100000,
        max_concurrent=8, max_queue=256,
        metrics=MetricsRegistry(),
    )
    segments = [
        "(10 <= x0 & x0 <= 11)",
        "(12 <= x0 & x0 <= 13)",
        "(14 <= x0 & x0 <= 15)",
    ]
    # The local model: every version the served database can be at.
    versions = [_db()]
    for segment in segments:
        versions.append(apply_delta(
            versions[-1], make_delta(("insert", "S", segment))
        ))
    expected = {}
    for version in versions:
        oracle = QueryEngine(
            version,
            cache=EngineCache(metrics=MetricsRegistry()),
            config=EngineConfig(),
        )
        expected[database_fingerprint(version)] = str(
            oracle.evaluate("S(x0)").formula
        )

    read_results = []
    with ServerThread(service) as server:
        stop = threading.Event()

        def reader():
            out = []
            while not stop.is_set() and len(out) < 80:
                out.append(post_json(
                    server.port, "/v1/query", {"query": "S(x0)"}
                ))
            return out

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(reader) for _ in range(3)]
            update_bodies = []
            for segment in segments:
                status, body = post_json(server.port, "/v1/update", {
                    "delta": [["insert", "S", segment]],
                    "database": "demo",
                })
                assert status == 200, body
                update_bodies.append(body)
            stop.set()
            for future in futures:
                read_results.extend(future.result())
        # After the last write, reads serve the tip version.
        status, body = post_json(
            server.port, "/v1/query", {"query": "S(x0)"}
        )

    # The writes walked exactly the modelled version chain.
    chain = [database_fingerprint(version) for version in versions]
    assert [b["parent"] for b in update_bodies] == chain[:-1]
    assert [b["fingerprint"] for b in update_bodies] == chain[1:]
    assert sorted(update_bodies[0]["aliases"]) == ["default", "demo"]

    assert status == 200 and body["fingerprint"] == chain[-1]
    assert read_results, "readers ran"
    for read_status, read_body in read_results:
        assert read_status == 200, read_body
        fingerprint = read_body["fingerprint"]
        assert fingerprint in expected, "a read saw a torn version"
        assert read_body["answer"]["formula"] == expected[fingerprint]


def test_http_write_quota_applies_to_updates():
    """Writes spend the same per-tenant budget as queries: 429 with a
    retry hint once the bucket is dry."""
    service = ConstraintService(
        {"demo": _db()},
        quota_rate=0.001, quota_burst=1,
        metrics=MetricsRegistry(),
    )
    payloads = [
        {"delta": [["insert", "S", f"({20 + 2 * i} <= x0 & x0 <= "
                    f"{21 + 2 * i})"]]}
        for i in range(3)
    ]
    with ServerThread(service) as server:
        results = run_load(
            server.port, payloads, concurrency=1,
            tenant="writer", path="/v1/update",
        )
    statuses = [r["status"] for r in results]
    assert statuses[0] == 200
    assert statuses[1:] == [429] * 2
    rejected = results[1]["body"]["error"]
    assert rejected["code"] == "quota_exceeded"
    assert rejected["retry_after_s"] > 0


def test_journal_stamps_update_events_with_request_and_tenant():
    """The audit trail covers writes: the update.applied event (and
    every event the write causes) carries the request id and tenant,
    plus the parent/child fingerprints of the version edge."""
    from repro.obs.journal import journal_scope
    from repro.server.loadgen import post_json

    service = ConstraintService(
        {"demo": _db()}, metrics=MetricsRegistry(),
    )
    with ServerThread(service) as server:
        with journal_scope() as journal:
            status, body = post_json(
                server.port, "/v1/update",
                {"delta": [["insert", "S", "(30 <= x0 & x0 <= 31)"]]},
                tenant="team-w",
            )
            events = journal.events()
    assert status == 200
    applied = [e for e in events if e["type"] == "update.applied"]
    assert len(applied) == 1
    event = applied[0]
    assert event["id"] == body["request_id"]
    assert event["request"] == body["request_id"]
    assert event["tenant"] == "team-w"
    assert body["parent"].startswith(event["parent"])
    assert body["fingerprint"].startswith(event["child"])
    # The delta.applied event the engine emits is scoped the same way.
    engine_events = [e for e in events if e["type"] == "delta.applied"]
    assert engine_events and all(
        e["request"] == body["request_id"]
        and e["tenant"] == "team-w"
        for e in engine_events
    )
