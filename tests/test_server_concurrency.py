"""Concurrency contracts: single-flight builds, quotas, shared store.

The three guarantees the server architecture rests on:

* a thundering herd of identical requests computes its arrangement
  **exactly once** (single-flight, at the cache layer and end-to-end
  over HTTP);
* admission control rejects deterministically (429 with a retry hint,
  503 with a queue depth) instead of degrading;
* one :class:`DiskStore` shared by independent engines under
  interleaved load/save stays uncorrupted and serves identical faces.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import ConstraintDatabase, QueryEngine, parse_formula
from repro.config import EngineConfig
from repro.engine import EngineCache
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.server import (
    AdmissionController,
    ConstraintService,
    Overloaded,
    QuotaExceeded,
    ServerThread,
    TokenBucket,
    run_load,
)


def _db(text: str = "(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"):
    return ConstraintDatabase.from_formula(parse_formula(text), arity=1)


# ----------------------------------------------------------------------
# Single-flight
# ----------------------------------------------------------------------
def test_cache_single_flight_builds_extension_once():
    """N threads, one cache, one database: one arrangement build."""
    workers = 8
    cache = EngineCache(metrics=MetricsRegistry())
    database = _db()
    engines = [
        QueryEngine(database, cache=cache, config=EngineConfig())
        for _ in range(workers)
    ]
    barrier = threading.Barrier(workers)
    registry = get_registry()
    builds_before = registry.get("arrangement.builds")

    def build(engine: QueryEngine):
        barrier.wait()
        return engine.extension

    with ThreadPoolExecutor(max_workers=workers) as pool:
        extensions = list(pool.map(build, engines))

    assert registry.get("arrangement.builds") - builds_before == 1
    stats = cache.stats()
    assert stats["extension_misses"] == 1, "exactly one thread built"
    assert stats["extension_hits"] == workers - 1
    assert all(ext is extensions[0] for ext in extensions), (
        "every waiter receives the one shared extension object"
    )


def test_http_single_flight_builds_extension_once():
    """The ISSUE contract, end-to-end: N concurrent identical queries
    over HTTP increment ``arrangement.builds`` exactly once."""
    workers = 6
    service = ConstraintService(
        {"demo": _db()}, max_concurrent=workers,
        metrics=MetricsRegistry(),
    )
    registry = get_registry()
    builds_before = registry.get("arrangement.builds")
    with ServerThread(service) as server:
        results = run_load(
            server.port, [{"query": "S(x0)"}] * workers,
            concurrency=workers,
        )
    assert [r["status"] for r in results] == [200] * workers
    assert registry.get("arrangement.builds") - builds_before == 1
    built = [r["body"]["build"] for r in results]
    assert built.count("built") == 1, "exactly one request paid the build"
    assert set(built) <= {"built", "coalesced", "warm"}


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_token_bucket_refills_at_rate():
    clock = [0.0]
    bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: clock[0])
    assert bucket.try_acquire() and bucket.try_acquire()
    assert not bucket.try_acquire(), "burst exhausted"
    assert bucket.retry_after_s() == pytest.approx(0.5)
    clock[0] += 0.5  # one token refilled at 2 tokens/s
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_quota_rejection_is_per_tenant():
    clock = [0.0]
    controller = AdmissionController(
        quota_rate=1.0, quota_burst=1, metrics=MetricsRegistry(),
        clock=lambda: clock[0],
    )

    async def drive():
        async with controller.admit("team-a"):
            pass
        with pytest.raises(QuotaExceeded) as caught:
            async with controller.admit("team-a"):
                pass
        assert caught.value.status == 429
        assert caught.value.retry_after_s > 0
        # team-b has its own bucket and is unaffected.
        async with controller.admit("team-b"):
            pass

    asyncio.run(drive())
    stats = controller.stats()
    assert stats["rejected_quota"] == 1
    assert stats["admitted"] == 2


def test_overload_rejection_reports_queue_depth():
    controller = AdmissionController(
        max_concurrent=1, max_queue=0, metrics=MetricsRegistry(),
    )

    async def drive():
        release = asyncio.Event()

        async def occupant():
            async with controller.admit():
                await release.wait()

        task = asyncio.create_task(occupant())
        await asyncio.sleep(0)  # let the occupant take the slot
        with pytest.raises(Overloaded) as caught:
            async with controller.admit():
                pass
        assert caught.value.status == 503
        release.set()
        await task

    asyncio.run(drive())
    assert controller.stats()["rejected_overload"] == 1


def test_http_quota_rejection_returns_structured_429():
    service = ConstraintService(
        {"demo": _db()},
        quota_rate=0.001, quota_burst=1,  # one request, then starve
        metrics=MetricsRegistry(),
    )
    with ServerThread(service) as server:
        results = run_load(
            server.port, [{"query": "S(x0)"}] * 4, concurrency=1,
            tenant="greedy",
        )
    statuses = [r["status"] for r in results]
    assert statuses[0] == 200
    assert statuses[1:] == [429] * 3
    rejected = results[1]["body"]["error"]
    assert rejected["code"] == "quota_exceeded"
    assert rejected["retry_after_s"] > 0


# ----------------------------------------------------------------------
# Shared disk store
# ----------------------------------------------------------------------
def test_disk_store_shared_by_two_engines_interleaved(tmp_path):
    """Independent engines over one store: no corruption, same faces."""
    from repro.store import resolve_store

    store = resolve_store(str(tmp_path / "store"))
    database = _db()
    queries = [
        "S(x0)",
        "exists y. S(y) & x0 - y <= 1 & y - x0 <= 1",
        "forall x. S(x) -> x < 5",
    ]

    def worker(_index: int):
        # Each worker is its own engine with a private in-memory cache;
        # only the disk store is shared.
        engine = QueryEngine(
            database,
            cache=EngineCache(metrics=MetricsRegistry()),
            config=EngineConfig(cache_dir=store),
        )
        answers = [str(engine.evaluate(q).formula) for q in queries]
        return engine, answers

    with ThreadPoolExecutor(max_workers=4) as pool:
        outcomes = list(pool.map(worker, range(4)))

    baseline_answers = outcomes[0][1]
    for __, answers in outcomes[1:]:
        assert answers == baseline_answers

    stats = store.stats()
    assert stats["corrupt_entries"] == 0
    assert stats["writes"] >= 1
    # Byte-identical faces: every engine's extension describes the same
    # decomposition, region for region.
    signatures = {
        tuple(str(region) for region in engine.extension.regions)
        for engine, __ in outcomes
    }
    assert len(signatures) == 1
