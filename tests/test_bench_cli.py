"""Smoke tests for ``repro bench`` and the benchmark runners."""

import io
import json

from repro.bench import (
    BENCHMARKS,
    run_bench_e2,
    run_bench_e3,
    run_bench_e14,
    run_bench_e15,
)
from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestBenchRunners:
    def test_e2_record_shape(self):
        record = run_bench_e2(sizes=(2, 3))
        assert record["benchmark"] == "E2"
        assert record["sizes"] == [2, 3]
        assert record["all_match"] is True
        assert record["largest_speedup"] is not None
        for row in record["results"]:
            assert row["match"] is True
            assert row["faces"] > 0
            assert row["lp_skipped"] > 0

    def test_e3_record_shape(self):
        record = run_bench_e3(sizes=(20,))
        assert record["benchmark"] == "E3"
        assert record["all_match"] is True
        assert record["metadata"]["jobs"] == 1
        assert record["metadata"]["lp_mode"] in ("exact", "filtered")
        for row in record["results"]:
            assert row["match"] is True
            assert row["systems"] == 20
            # The float tier must decide most systems; fallbacks and
            # certification retries are legal but bounded by the batch.
            assert row["filter_hits"] > 0
            assert row["filter_hits"] + row["filter_fallbacks"] >= 0

    def test_e3_is_deterministic_under_its_seed(self):
        first = run_bench_e3(sizes=(10,), seed=7)
        second = run_bench_e3(sizes=(10,), seed=7)
        assert [row["filter_hits"] for row in first["results"]] == \
            [row["filter_hits"] for row in second["results"]]

    def test_e15_record_shape(self):
        record = run_bench_e15(sizes=(1, 2))
        assert record["benchmark"] == "E15"
        assert record["all_match"] is True
        for row in record["results"]:
            assert row["match"] is True
            assert row["converged"] is True
            assert row["stages"] == row["k"] + 1

    def test_e14_record_shape(self):
        record = run_bench_e14(sizes=(3,))
        assert record["benchmark"] == "E14"
        assert record["all_match"] is True
        assert record["geomean_speedup"] is not None
        # The warm planner must have consumed the cold run's statistics.
        assert record["metadata"]["optimizer_stats"]["stats_hits"] > 0
        for row in record["results"]:
            assert row["match"] is True

    def test_registry_names_files(self):
        assert BENCHMARKS["e2"][1] == "BENCH_E2.json"
        assert BENCHMARKS["e3"][1] == "BENCH_E3.json"
        assert BENCHMARKS["e14"][1] == "BENCH_E14.json"
        assert BENCHMARKS["e15"][1] == "BENCH_E15.json"

    def test_records_carry_lp_mode_metadata(self):
        record = run_bench_e2(sizes=(2,))
        assert record["metadata"]["lp_mode"] in ("exact", "filtered")
        assert record["metadata"]["jobs"] == record["jobs"]

    def test_records_carry_executor_backend_metadata(self):
        record = run_bench_e2(sizes=(2,))
        assert record["metadata"]["executor"] in ("compiled", "interpreted")
        assert record["metadata"]["backend"] in ("memory", "sqlite")

    def test_write_record_refuses_missing_metadata(self, tmp_path):
        import pytest

        from repro.bench import write_record

        record = run_bench_e2(sizes=(2,), check_only=True)
        del record["metadata"]["executor"]
        with pytest.raises(ValueError, match="executor"):
            write_record(record, str(tmp_path / "bad.json"))
        assert not (tmp_path / "bad.json").exists()

    def test_write_record_refuses_unset_required_values(self, tmp_path):
        import pytest

        from repro.bench import write_record

        record = run_bench_e2(sizes=(2,), check_only=True)
        record["metadata"]["backend"] = None
        with pytest.raises(ValueError, match="backend"):
            write_record(record, str(tmp_path / "bad.json"))

    def test_write_record_allows_null_git_sha(self, tmp_path):
        from repro.bench import write_record

        record = run_bench_e2(sizes=(2,), check_only=True)
        record["metadata"]["git_sha"] = None
        write_record(record, str(tmp_path / "ok.json"))
        assert (tmp_path / "ok.json").exists()


class TestBenchCommand:
    def test_bench_e2_check_only(self):
        code, text = run_cli(
            "bench", "e2", "--sizes", "2,3", "--check-only"
        )
        assert code == 0
        record = json.loads(text)
        assert record["check_only"] is True
        assert record["all_match"] is True

    def test_bench_e15_writes_output(self, tmp_path):
        target = tmp_path / "BENCH_E15.json"
        code, text = run_cli(
            "bench", "e15", "--sizes", "1", "--check-only",
            "--output", str(target),
        )
        assert code == 0
        record = json.loads(target.read_text())
        assert record["benchmark"] == "E15"
        assert f"wrote {target}" in text

    def test_bench_rejects_bad_sizes(self):
        code, text = run_cli("bench", "e2", "--sizes", "2,banana")
        assert code == 2
        assert "comma-separated integers" in text

    def test_bench_e2_jobs_flag(self):
        code, text = run_cli(
            "bench", "e2", "--sizes", "2", "--check-only", "--jobs", "2",
        )
        assert code == 0
        record = json.loads(text)
        assert record["jobs"] == 2

    def test_bench_e3_check_only(self):
        code, text = run_cli(
            "bench", "e3", "--sizes", "15", "--check-only"
        )
        assert code == 0
        record = json.loads(text)
        assert record["benchmark"] == "E3"
        assert record["all_match"] is True

    def test_bench_respects_lp_mode_flag(self):
        code, text = run_cli(
            "bench", "e2", "--sizes", "2", "--check-only",
            "--lp-mode", "exact",
        )
        assert code == 0
        record = json.loads(text)
        assert record["metadata"]["lp_mode"] == "exact"


class TestBenchMetadataAndHistory:
    def test_metadata_carries_provenance(self):
        from datetime import datetime
        import platform

        record = run_bench_e2(sizes=(2,), check_only=True)
        metadata = record["metadata"]
        assert metadata["python_version"] == platform.python_version()
        # Parseable ISO-8601 UTC stamp.
        stamp = datetime.fromisoformat(metadata["timestamp_utc"])
        assert stamp.tzinfo is not None
        sha = metadata["git_sha"]
        assert sha is None or (
            len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)
        )

    def test_history_line_shape(self):
        from repro.bench import history_line

        record = run_bench_e2(sizes=(2,), check_only=True)
        line = history_line(record)
        assert line["benchmark"] == "E2"
        assert line["sizes"] == [2]
        assert line["all_match"] is True
        assert line["timestamp_utc"] == \
            record["metadata"]["timestamp_utc"]
        assert line["git_sha"] == record["metadata"]["git_sha"]

    def test_append_history_cli_accumulates(self, tmp_path):
        path = tmp_path / "BENCH_HISTORY.jsonl"
        for _ in range(2):
            code, text = run_cli(
                "bench", "e2", "--sizes", "2", "--check-only",
                "--append-history", str(path),
            )
            assert code == 0
            assert f"appended history to {path}" in text
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            entry = json.loads(line)
            assert entry["benchmark"] == "E2"
            assert entry["python_version"]

    def test_history_line_carries_regression_signal(self):
        from repro.bench import history_line

        record = run_bench_e2(sizes=(2,), check_only=True)
        line = history_line(record)
        assert line["executor"] is not None
        assert line["fast_total_s"] > 0


class TestRegressionSentryCli:
    def test_no_history_passes_with_verdict(self, tmp_path):
        path = tmp_path / "history.jsonl"
        code, text = run_cli(
            "bench", "e2", "--sizes", "2", "--check-only",
            "--check-regression", "--history", str(path),
        )
        assert code == 0
        assert '"status": "no-history"' in text

    def test_matching_history_is_ok(self, tmp_path):
        path = tmp_path / "history.jsonl"
        for __ in range(2):
            code, __text = run_cli(
                "bench", "e2", "--sizes", "2", "--check-only",
                "--append-history", str(path),
            )
            assert code == 0
        code, text = run_cli(
            "bench", "e2", "--sizes", "2", "--check-only",
            "--check-regression", "--history", str(path),
            "--tolerance", "10.0",  # generous: CI machines are noisy
        )
        assert code == 0
        assert '"status": "ok"' in text

    def test_regression_exits_3(self, tmp_path):
        from repro.bench import history_line

        path = tmp_path / "history.jsonl"
        record = run_bench_e2(sizes=(2,), check_only=True)
        # Fabricate an impossibly fast history so the real (honest) run
        # reads as a regression against it.
        line = history_line(record)
        line["fast_total_s"] = 1e-9
        with open(path, "w") as handle:
            handle.write(json.dumps(line) + "\n")
        code, text = run_cli(
            "bench", "e2", "--sizes", "2", "--check-only",
            "--check-regression", "--history", str(path),
        )
        assert code == 3
        assert '"status": "regression"' in text
        assert "error: performance regression" in text

    def test_regressing_run_still_lands_in_history(self, tmp_path):
        from repro.bench import history_line

        path = tmp_path / "history.jsonl"
        record = run_bench_e2(sizes=(2,), check_only=True)
        line = history_line(record)
        line["fast_total_s"] = 1e-9
        with open(path, "w") as handle:
            handle.write(json.dumps(line) + "\n")
        code, __ = run_cli(
            "bench", "e2", "--sizes", "2", "--check-only",
            "--check-regression", "--history", str(path),
            "--append-history", str(path),
        )
        assert code == 3
        assert len(path.read_text().strip().splitlines()) == 2
