"""Tests for the region extension structure, properties, and SVG viz."""

from fractions import Fraction

import pytest

from repro.errors import EvaluationError, GeometryError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.logic.properties import (
    coordinate_bound,
    has_small_coordinate_property,
    max_bit_length,
)
from repro.regions.nc1 import NC1Decomposition
from repro.twosorted.structure import RegionExtension
from repro.viz.svg import (
    render_arrangement,
    render_nc1_decomposition,
    render_relation,
)
from repro.arrangement.builder import build_arrangement

F = Fraction


def db(text: str, arity: int) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


class TestRegionExtension:
    def test_build_arrangement_default(self):
        extension = RegionExtension.build(db("0 < x0 & x0 < 1", 1))
        assert extension.region_count() == 5
        assert extension.spatial.arity == 1

    def test_build_nc1(self):
        extension = RegionExtension.build(
            db("0 <= x0 & x0 <= 1", 1), "nc1"
        )
        # Closed segment: open segment + 2 vertices.
        assert extension.region_count() == 3

    def test_unknown_decomposition(self):
        with pytest.raises(EvaluationError):
            RegionExtension.build(db("x0 > 0", 1), "voronoi")

    def test_missing_spatial_relation(self):
        database = ConstraintDatabase.make(
            {"T": ConstraintRelation.make(("x",), parse_formula("x > 0"))}
        )
        with pytest.raises(EvaluationError):
            RegionExtension.build(database)
        extension = RegionExtension.build(database, spatial_name="T")
        assert extension.spatial_name == "T"

    def test_contains_and_adjacent(self):
        extension = RegionExtension.build(db("0 < x0 & x0 < 1", 1))
        open_interval = next(
            r.index for r in extension.regions
            if extension.region_subset_of_spatial(r.index)
        )
        assert extension.contains((F(1, 2),), open_interval)
        assert not extension.contains((F(5),), open_interval)
        vertex_zero = next(
            r.index for r in extension.regions
            if r.dimension == 0 and r.sample_point() == (F(0),)
        )
        assert extension.adjacent(open_interval, vertex_zero)
        assert not extension.adjacent(open_interval, open_interval)

    def test_refined_decomposition(self):
        database = ConstraintDatabase.make({
            "S": ConstraintRelation.make(
                ("x0",), parse_formula("0 <= x0 & x0 <= 4")
            ),
            "Zone": ConstraintRelation.make(
                ("x0",), parse_formula("1 <= x0 & x0 <= 2")
            ),
        })
        plain = RegionExtension.build(database, "arrangement")
        refined = RegionExtension.build(database, "refined")
        assert refined.region_count() > plain.region_count()
        # Refinement makes every region homogeneous w.r.t. the zone.
        zone = database.relation("Zone")
        for region in refined.regions:
            region_rel = region.as_relation(("x0",))
            inside = region_rel.difference(zone).is_empty()
            outside = region_rel.intersect(zone).is_empty()
            assert inside or outside

    def test_refined_arity_mismatch_rejected(self):
        database = ConstraintDatabase.make({
            "S": ConstraintRelation.make(
                ("x0",), parse_formula("x0 > 0")
            ),
            "T": ConstraintRelation.make(
                ("x0", "x1"), parse_formula("x0 > x1")
            ),
        })
        with pytest.raises(EvaluationError):
            RegionExtension.build(database, "refined")

    def test_str(self):
        extension = RegionExtension.build(db("x0 > 0", 1))
        assert "regions" in str(extension)


class TestSmallCoordinateProperty:
    def test_bounds(self):
        extension = RegionExtension.build(
            db("(0 < x0 & x0 < 1) | x0 = 3", 1)
        )
        assert coordinate_bound(extension) == F(3)
        assert max_bit_length(extension) == 2  # 3 = 0b11
        assert has_small_coordinate_property(extension)

    def test_no_vertices(self):
        extension = RegionExtension.build(db("x0 > x0 - 1", 1))
        assert coordinate_bound(extension) == F(0)
        assert has_small_coordinate_property(extension)

    def test_violation_detected(self):
        # One giant coordinate, few regions.
        extension = RegionExtension.build(db(f"x0 = {2 ** 40}", 1))
        # 3 regions, bit length 41 > 3 * constant for small constants.
        assert not has_small_coordinate_property(extension, constant=1)
        assert has_small_coordinate_property(extension, constant=20)

    def test_constant_validation(self):
        extension = RegionExtension.build(db("x0 = 1", 1))
        with pytest.raises(ValueError):
            has_small_coordinate_property(extension, constant=0)


class TestSvgRendering:
    def triangle(self) -> ConstraintRelation:
        return ConstraintRelation.make(
            ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
        )

    def test_render_relation(self):
        svg = render_relation(
            self.triangle(), viewport=(-0.5, 1.5, -0.5, 1.5), samples=12
        )
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "rect" in svg

    def test_render_arrangement(self):
        arrangement = build_arrangement(self.triangle())
        svg = render_arrangement(
            arrangement, viewport=(-0.5, 1.5, -0.5, 1.5)
        )
        assert svg.count("<line") == 3
        assert svg.count("<circle") == 19

    def test_render_nc1(self):
        decomposition = NC1Decomposition(self.triangle())
        svg = render_nc1_decomposition(
            decomposition, viewport=(-0.5, 1.5, -0.5, 1.5)
        )
        assert "<polygon" in svg

    def test_dimension_checks(self):
        line = ConstraintRelation.make(("x",), parse_formula("x > 0"))
        with pytest.raises(GeometryError):
            render_relation(line)
        with pytest.raises(GeometryError):
            render_arrangement(build_arrangement(line))

    def test_degenerate_viewport(self):
        with pytest.raises(GeometryError):
            render_relation(self.triangle(), viewport=(1.0, 1.0, 0.0, 1.0))
