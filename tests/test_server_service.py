"""ConstraintService routing, schemas, errors and the audit journal.

These tests drive :meth:`ConstraintService.handle` directly on an
event loop (no sockets — ``tests/test_server_http.py`` covers the wire
path), so they pin the service contract: response shapes, structured
error codes, and every journal event a request causes carrying the
request id and tenant.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import ConstraintDatabase, parse_formula
from repro.obs.journal import journal_scope
from repro.obs.metrics import MetricsRegistry
from repro.server import ConstraintService
from repro.server.http import Request


def _db(text: str = "(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"):
    return ConstraintDatabase.from_formula(parse_formula(text), arity=1)


def _request(method: str, path: str, body: bytes = b"",
             headers: dict | None = None) -> Request:
    return Request(method=method, path=path, query={},
                   headers=headers or {}, body=body)


def _call(service: ConstraintService, request: Request):
    return asyncio.run(service.handle(request))


@pytest.fixture
def service() -> ConstraintService:
    return ConstraintService({"demo": _db()}, metrics=MetricsRegistry())


def test_first_database_is_default(service):
    assert service.databases["default"] is service.databases["demo"]


def test_query_response_shape(service):
    response = _call(service, _request(
        "POST", "/v1/query", b'{"query": "S(x0)"}'
    ))
    assert response.status == 200
    payload = response.payload
    assert payload["request_id"].startswith("req-")
    assert payload["database"] == "default"
    assert payload["build"] in ("built", "warm", "coalesced")
    answer = payload["answer"]
    assert answer["variables"] == ["x0"]
    assert answer["empty"] is False
    assert answer["sample_points"], "non-empty answers carry witnesses"


def test_boolean_query_reports_truth(service):
    response = _call(service, _request(
        "POST", "/v1/query",
        b'{"query": "exists x. S(x) & x < 1"}',
    ))
    assert response.status == 200
    assert response.payload["answer"]["truth"] is True
    assert response.payload["answer"]["variables"] == []


def test_named_database_selection(service):
    response = _call(service, _request(
        "POST", "/v1/query", b'{"query": "S(x0)", "database": "demo"}'
    ))
    assert response.status == 200
    assert response.payload["database"] == "demo"


def test_unknown_database_is_404(service):
    response = _call(service, _request(
        "POST", "/v1/query", b'{"query": "S(x0)", "database": "nope"}'
    ))
    assert response.status == 404
    assert response.payload["error"]["code"] == "unknown_database"


def test_missing_query_is_400(service):
    response = _call(service, _request("POST", "/v1/query", b"{}"))
    assert response.status == 400
    assert response.payload["error"]["code"] == "missing_query"


def test_parse_error_is_400_invalid_query(service):
    response = _call(service, _request(
        "POST", "/v1/query", b'{"query": "S(x0"}'
    ))
    assert response.status == 400
    error = response.payload["error"]
    assert error["code"] == "invalid_query"
    assert error["request_id"].startswith("req-")


def test_malformed_json_is_400(service):
    response = _call(service, _request("POST", "/v1/query", b"{nope"))
    assert response.status == 400
    assert response.payload["error"]["code"] == "malformed_json"


def test_unknown_route_is_404_and_wrong_method_405(service):
    assert _call(service, _request("GET", "/nope")).status == 404
    assert _call(service, _request("GET", "/v1/query")).status == 405


def test_explain_reuses_plan_compiler(service):
    response = _call(service, _request(
        "POST", "/v1/explain",
        b'{"query": "S(x0)", "analyze": true}',
    ))
    assert response.status == 200
    payload = response.payload
    assert payload["analyzed"] is True
    assert payload["plan"]["op"]  # the PlanNode tree from explain()
    assert payload["request_id"].startswith("req-")


def test_healthz_and_stats(service):
    health = _call(service, _request("GET", "/v1/healthz"))
    assert health.status == 200
    assert health.payload["status"] == "ok"
    assert "demo" in health.payload["databases"]

    _call(service, _request("POST", "/v1/query", b'{"query": "S(x0)"}'))
    stats = _call(service, _request("GET", "/v1/stats"))
    assert stats.status == 200
    payload = stats.payload
    assert payload["requests"]["total"] >= 2
    assert payload["admission"]["admitted"] >= 1
    assert payload["pool"]["created"] >= 1
    assert "engine_cache" in payload["pool"]
    assert payload["config"]["jobs"] >= 1


def test_journal_is_a_per_request_audit_log(service):
    """Every event a request causes carries its id and tenant."""
    with journal_scope() as journal:
        _call(service, _request(
            "POST", "/v1/query", b'{"query": "S(x0)"}',
            headers={"x-repro-tenant": "team-a"},
        ))
        events = journal.events()
    begin = [e for e in events if e["type"] == "request.begin"]
    end = [e for e in events if e["type"] == "request.end"]
    assert len(begin) == 1 and len(end) == 1
    request_id = begin[0]["id"]
    assert request_id.startswith("req-")
    assert end[0]["id"] == request_id
    assert end[0]["status"] == 200
    # The contextvar scoping stamps *all* events in between — cache,
    # store and span events included — with the same request id.
    scoped = [e for e in events if e.get("request") == request_id]
    assert len(scoped) == len(events), (
        "every event of the request must carry its request id"
    )
    assert all(e.get("tenant") == "team-a" for e in scoped)


def test_max_requests_sets_shutdown(service):
    service.max_requests = 2

    async def drive():
        await service.handle(_request("GET", "/v1/healthz"))
        assert not service.shutdown.is_set()
        await service.handle(_request("GET", "/v1/healthz"))
        return service.shutdown.is_set()

    assert asyncio.run(drive()) is True
