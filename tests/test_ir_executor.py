"""Unit semantics of the relational-algebra IR and its memo kernels.

Two layers are pinned down here, independently of whole-program runs:

* **Node semantics** — each :mod:`repro.ir.nodes` operator must match
  the plain :class:`ConstraintRelation` algebra it compiles away from,
  and a guard-skipped subtree must evaluate to ``None`` (no derivation)
  with ``None`` propagating through every unary/n-ary operator exactly
  as the interpreted stage driver would skip the rule.
* **Kernel soundness** — every memoised decision procedure must agree
  with the exact oracle it shortcuts: the interval prefilter may answer
  ``None`` but never contradict ``disjunct_feasible``, the feasibility
  memo answers repeats from cache, and the incremental cell index
  reproduces the full arrangement enumeration leaf for leaf.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrangement.builder import enumerate_sign_vectors
from repro.constraints.parser import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.constraints.simplify import disjunct_feasible
from repro.errors import EvaluationError
from repro.geometry.hyperplane import Hyperplane
from repro.ir import nodes as ir
from repro.ir.executor import ExecutionContext, execute
from repro.ir.kernels import KernelCache, _interval_verdict
from repro.obs.metrics import get_registry

F = Fraction


def rel(text: str, schema=("x",)) -> ConstraintRelation:
    return ConstraintRelation.make(tuple(schema), parse_formula(text))


def run(node, **spaces):
    context = ExecutionContext(
        idb=spaces.get("idb", {}),
        delta=spaces.get("delta", {}),
        fresh=spaces.get("fresh", {}),
    )
    return execute(node, context, KernelCache())


class TestNodeSemantics:
    def test_scan_reads_named_space(self):
        bound = rel("0 <= x & x <= 1")
        assert run(ir.Scan("idb", "A"), idb={"A": bound}) is bound
        assert run(ir.Scan("delta", "A"), delta={"A": bound}) is bound
        assert run(ir.Scan("fresh", "A"), fresh={"A": bound}) is bound

    def test_scan_unbound_name_raises(self):
        with pytest.raises(EvaluationError):
            run(ir.Scan("idb", "Missing"))

    def test_guard_skips_on_empty_delta(self):
        body = ir.Scan("idb", "A")
        bound = rel("x = 0")
        empty = ConstraintRelation.empty(("x",))
        assert (
            run(ir.Guard(body, "A"), idb={"A": bound}, delta={"A": empty})
            is None
        )
        assert (
            run(ir.Guard(body, "A"), idb={"A": bound}, delta={"A": bound})
            is bound
        )

    def test_none_propagates_through_unary_operators(self):
        skipped = ir.Guard(
            ir.Scan("idb", "A"), "A"
        )
        spaces = dict(
            idb={"A": rel("x = 0")},
            delta={"A": ConstraintRelation.empty(("x",))},
        )
        assert run(ir.Rename(skipped, ("y",)), **spaces) is None
        assert run(ir.Widen(skipped, ("x", "y")), **spaces) is None
        assert run(ir.Project(skipped, ("x",)), **spaces) is None
        assert run(ir.Simplify(skipped), **spaces) is None
        assert run(ir.Complement(skipped), **spaces) is None
        assert run(ir.Join([skipped, ir.Scan("idb", "A")]), **spaces) is None
        assert run(ir.Diff(skipped, ir.Scan("idb", "A")), **spaces) is None

    def test_union_filters_skipped_children(self):
        spaces = dict(
            idb={"A": rel("0 <= x & x <= 1"), "B": rel("2 <= x & x <= 3")},
            delta={"A": ConstraintRelation.empty(("x",))},
        )
        skipped = ir.Guard(ir.Scan("idb", "A"), "A")
        live = run(
            ir.Union([skipped, ir.Scan("idb", "B")]), **spaces
        )
        assert live.equivalent(rel("2 <= x & x <= 3"))
        assert run(ir.Union([skipped, skipped]), **spaces) is None

    def test_join_matches_intersection(self):
        left = rel("0 <= x & x <= 2")
        right = rel("1 <= x & x <= 3")
        joined = run(
            ir.Join([ir.Scan("idb", "A"), ir.Scan("idb", "B")]),
            idb={"A": left, "B": right},
        )
        assert joined.equivalent(rel("1 <= x & x <= 2"))

    def test_union_matches_relation_union(self):
        parts = {"A": rel("0 <= x & x <= 1"), "B": rel("1 <= x & x <= 2")}
        union = run(
            ir.Union([ir.Scan("idb", "A"), ir.Scan("idb", "B")]), idb=parts
        )
        assert union.equivalent(rel("0 <= x & x <= 2"))

    def test_diff_matches_relation_difference(self):
        left = rel("0 <= x & x <= 3")
        right = rel("1 <= x & x <= 2")
        diff = run(
            ir.Diff(ir.Scan("idb", "A"), ir.Scan("idb", "B")),
            idb={"A": left, "B": right},
        )
        assert diff.equivalent(left.difference(right))

    def test_complement_matches_relation_complement(self):
        bound = rel("0 <= x & x <= 1")
        complement = run(ir.Complement(ir.Scan("idb", "A")), idb={"A": bound})
        assert complement.equivalent(bound.complement())

    def test_complement_memoises_on_the_relation(self):
        registry = get_registry()
        bound = rel("-1 <= x & x <= 5")
        kernels = KernelCache()
        context = ExecutionContext(idb={"A": bound})
        node = ir.Complement(ir.Scan("idb", "A"))
        first = execute(node, context, kernels)
        before = registry.get("ir.complement_memo_hits")
        second = execute(node, context, kernels)
        assert second is first
        assert registry.get("ir.complement_memo_hits") == before + 1

    def test_project_eliminates_variables(self):
        pair = rel("0 <= x & x <= 1 & y = x + 1", schema=("x", "y"))
        projected = run(
            ir.Project(ir.Scan("idb", "A"), ("x",)), idb={"A": pair}
        )
        assert projected.variables == ("x",)
        assert projected.equivalent(rel("0 <= x & x <= 1"))

    def test_widen_pads_schema(self):
        widened = run(
            ir.Widen(ir.Scan("idb", "A"), ("x", "y")),
            idb={"A": rel("x = 0")},
        )
        assert widened.variables == ("x", "y")
        assert widened.contains((F(0), F(7)))
        assert not widened.contains((F(1), F(0)))

    def test_rename_relabels_schema(self):
        renamed = run(
            ir.Rename(ir.Scan("idb", "A"), ("y",)),
            idb={"A": rel("0 <= x & x <= 1")},
        )
        assert renamed.variables == ("y",)
        assert renamed.equivalent(rel("0 <= y & y <= 1", schema=("y",)))

    def test_simplify_matches_relation_simplify(self):
        redundant = rel("(0 <= x & x <= 2) | (0 <= x & x <= 1)")
        simplified = run(ir.Simplify(ir.Scan("idb", "A")), idb={"A": redundant})
        assert str(simplified.formula) == str(redundant.simplify().formula)

    def test_const_returns_its_relation(self):
        bound = rel("x = 3")
        assert run(ir.Const(bound, note="seed")) is bound


def disjuncts_of(text: str, schema=("x", "y")):
    """All DNF disjuncts of a formula, *without* feasibility pruning.

    ``ConstraintRelation.make`` would silently drop infeasible
    disjuncts, which is exactly the behaviour under test — so go
    through the raw DNF conversion instead.
    """
    from repro.constraints.normal_forms import to_dnf

    return list(to_dnf(parse_formula(text)))


SEEDED_DISJUNCT_TEXTS = (
    "0 <= x & x <= 1",
    "x <= 0 & x >= 1",
    "x < 0 & x > 0",
    "x = 1 & y = 2 & x + y <= 3",
    "x = 1 & y = 2 & x + y < 3",
    "x - y <= 1 & y - x <= 1 & x >= 0 & y >= 0",
    "x + y <= -1 & x >= 0 & y >= 0",
    "2*x <= 4 & 2*x >= 4",
    "2*x < 4 & x > 2",
    "x <= 1",
    "0*x + 1 <= 0",
    "x - y = 0 & y - x >= 1",
)


class TestKernelSoundness:
    def test_interval_verdict_agrees_with_lp_on_seeds(self):
        for text in SEEDED_DISJUNCT_TEXTS:
            for disjunct in disjuncts_of(text):
                verdict = _interval_verdict(disjunct)
                if verdict is not None:
                    assert verdict == disjunct_feasible(disjunct), text

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=-3, max_value=3),
                st.integers(min_value=-3, max_value=3),
                st.integers(min_value=-4, max_value=4),
                st.sampled_from(("<=", "<", ">=", ">", "=")),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_interval_verdict_agrees_with_lp_fuzzed(self, data):
        parts = []
        for a, b, c, op in data:
            parts.append(f"{a}*x + {b}*y {op} {c}")
        for disjunct in disjuncts_of(" & ".join(parts)):
            verdict = _interval_verdict(disjunct)
            if verdict is not None:
                assert verdict == disjunct_feasible(disjunct), parts

    def test_feasibility_matches_oracle_and_memoises(self):
        registry = get_registry()
        kernels = KernelCache()
        for text in SEEDED_DISJUNCT_TEXTS:
            for disjunct in disjuncts_of(text):
                assert kernels.feasibility(disjunct) == disjunct_feasible(
                    disjunct
                ), text
                before = registry.get("ir.feasibility_memo_hits")
                calls = registry.get("ir.feasibility_calls")
                assert kernels.feasibility(disjunct) == disjunct_feasible(
                    disjunct
                )
                assert registry.get("ir.feasibility_memo_hits") == before + 1
                assert registry.get("ir.feasibility_calls") == calls

    def test_minimise_shares_the_simplified_cache_slot(self):
        kernels = KernelCache()
        redundant = rel("(0 <= x & x <= 2) | (1 <= x & x <= 2)")
        result = kernels.minimise(redundant)
        assert str(result.formula) == str(redundant.simplify().formula)
        # The slot the interpreted path reads is populated...
        assert redundant._cache["simplified"] is result
        # ...and a second call answers from it without recomputing.
        assert kernels.minimise(redundant) is result

    def test_cell_index_extends_previous_enumerations(self):
        registry = get_registry()
        kernels = KernelCache()
        base_planes = [
            Hyperplane.make((1, 0), 0),
            Hyperplane.make((0, 1), 0),
        ]
        extended_planes = base_planes + [Hyperplane.make((1, 1), -2)]

        full_builds = registry.get("ir.cell_index_full_builds")
        first = list(kernels.enumerate_cells(base_planes, 2))
        assert registry.get("ir.cell_index_full_builds") == full_builds + 1
        assert first == list(enumerate_sign_vectors(base_planes, 2))

        # Same plane list: answered from the index, no new build.
        full_builds = registry.get("ir.cell_index_full_builds")
        extensions = registry.get("ir.cell_index_extensions")
        assert list(kernels.enumerate_cells(base_planes, 2)) == first
        assert registry.get("ir.cell_index_full_builds") == full_builds
        assert registry.get("ir.cell_index_extensions") == extensions

        # Superset plane list: the cached leaves are extended in place
        # and the result is leaf-for-leaf the full enumeration.
        second = list(kernels.enumerate_cells(extended_planes, 2))
        assert registry.get("ir.cell_index_extensions") == extensions + 1
        assert registry.get("ir.cell_index_full_builds") == full_builds
        fresh = list(enumerate_sign_vectors(extended_planes, 2))
        assert [signs for signs, _ in second] == [
            signs for signs, _ in fresh
        ]
        for (signs, witness), plane_list in (
            (leaf, extended_planes) for leaf in second
        ):
            for plane, sign in zip(plane_list, signs):
                value = plane.evaluate(witness)
                if sign < 0:
                    assert value < 0
                elif sign > 0:
                    assert value > 0
                else:
                    assert value == 0

    def test_kernel_union_join_difference_match_relation_algebra(self):
        kernels = KernelCache()
        left = rel("0 <= x & x <= 3")
        right = rel("(1 <= x & x <= 2) | (5 <= x & x <= 6)")
        assert kernels.union(("x",), [left, right]).equivalent(
            rel("(0 <= x & x <= 3) | (5 <= x & x <= 6)")
        )
        assert kernels.join(("x",), [left, right]).equivalent(
            rel("1 <= x & x <= 2")
        )
        assert kernels.difference(left, right).equivalent(
            left.difference(right)
        )
