"""Tests for NNF and miniscoping on region formulas."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.logic import ast
from repro.logic.evaluator import Evaluator
from repro.logic.parser import parse_query
from repro.logic.transform import miniscope, optimize, to_nnf
from repro.twosorted.structure import RegionExtension

F = Fraction

DB = ConstraintDatabase.from_formula(
    parse_formula("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"), 1
)


def count_nodes(formula, kind) -> int:
    total = int(isinstance(formula, kind))
    if isinstance(formula, (ast.RAnd, ast.ROr)):
        return total + sum(count_nodes(op, kind) for op in formula.operands)
    if isinstance(formula, ast.RNot):
        return total + count_nodes(formula.operand, kind)
    if isinstance(formula, (ast.ExistsElem, ast.ForallElem,
                            ast.ExistsRegion, ast.ForallRegion)):
        return total + count_nodes(formula.body, kind)
    if isinstance(formula, (ast.Fixpoint, ast.TC, ast.DTC, ast.RBit)):
        return total + count_nodes(formula.body, kind)
    return total


class TestNNF:
    def test_not_exists_becomes_forall(self):
        f = parse_query("!(exists x. S(x))")
        nnf = to_nnf(f)
        assert isinstance(nnf, ast.ForallElem)
        assert isinstance(nnf.body, ast.RNot)

    def test_not_forall_region(self):
        f = parse_query("!(forall R. sub(R, S))")
        nnf = to_nnf(f)
        assert isinstance(nnf, ast.ExistsRegion)

    def test_double_negation(self):
        f = parse_query("!(!(S(x)))")
        assert isinstance(to_nnf(f), ast.RelationAtom)

    def test_de_morgan(self):
        f = parse_query("!(S(x) & x > 0)")
        nnf = to_nnf(f)
        assert isinstance(nnf, ast.ROr)
        assert all(isinstance(op, ast.RNot) for op in nnf.operands)

    def test_negations_only_on_atoms(self):
        f = parse_query(
            "!(exists x, R. ((x) in R | S(x)) & !(x > 0))"
        )
        nnf = to_nnf(f)

        def check(node, under_not=False):
            if isinstance(node, ast.RNot):
                assert isinstance(
                    node.operand,
                    (ast.LinearAtom, ast.RelationAtom, ast.InRegion,
                     ast.Adj, ast.RegionEq, ast.SubsetAtom, ast.SetAtom,
                     ast.Fixpoint, ast.TC, ast.DTC, ast.RBit),
                )
                return
            for child in getattr(node, "operands", []):
                check(child)
            if hasattr(node, "body"):
                check(node.body)

        check(nnf)


class TestMiniscope:
    def test_exists_distributes_over_or(self):
        f = to_nnf(parse_query("exists R. sub(R, S) | adj(R, R)"))
        scoped = miniscope(f)
        assert isinstance(scoped, ast.ROr)

    def test_unused_quantifier_dropped(self):
        f = parse_query("exists x. S(y)")
        scoped = miniscope(to_nnf(f))
        assert isinstance(scoped, ast.RelationAtom)

    def test_independent_conjunct_pulled_out(self):
        f = parse_query("exists R. sub(R, S) & S(x)")
        scoped = miniscope(to_nnf(f))
        assert isinstance(scoped, ast.RAnd)
        quantified = [
            op for op in scoped.operands
            if isinstance(op, ast.ExistsRegion)
        ]
        assert len(quantified) == 1
        assert quantified[0].free_region_vars() == frozenset()

    def test_region_scope_shrinks(self):
        f = parse_query(
            "exists R, Z. sub(R, S) & sub(Z, S) & adj(R, Z)"
        )
        scoped = optimize(f)
        # Both quantifiers still present, no semantic claim here — just
        # structure sanity.
        assert count_nodes(scoped, ast.ExistsRegion) == 2


QUERIES = [
    "exists x. S(x) & x > 0",
    "!(exists x. S(x) & x > 10)",
    "forall x. S(x) -> (exists R. (x) in R & sub(R, S))",
    "exists R. sub(R, S) | (exists x. x = 0 & (x) in R)",
    "forall R. sub(R, S) -> (exists Z. adj(R, Z))",
    "exists RX, RY. [lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
    "(exists Z. M(R, Z) & adj(Z, Rp)))](RX, RY)",
    "exists X, Y. X != Y & [tc R -> Rp. adj(R, Rp)](X; Y)",
]


class TestSemanticPreservation:
    def test_all_queries_preserved(self):
        extension = RegionExtension.build(DB)
        evaluator = Evaluator(extension)
        for text in QUERIES:
            original = parse_query(text)
            transformed = optimize(original)
            if original.free_element_vars():
                a = evaluator.evaluate(original)
                b = evaluator.evaluate(transformed)
                assert a.equivalent(b), text
            else:
                assert evaluator.truth(original) == \
                    evaluator.truth(transformed), text

    @given(shift=st.integers(-2, 4), bound=st.integers(-1, 4))
    @settings(max_examples=25, deadline=None)
    def test_random_instances_preserved(self, shift, bound):
        extension = RegionExtension.build(DB)
        evaluator = Evaluator(extension)
        text = (
            f"!(exists x. S(x + {shift}) & x > {bound}) | "
            f"(forall y. S(y) -> y < {bound + 5})"
        )
        original = parse_query(text)
        transformed = optimize(original)
        assert evaluator.truth(original) == evaluator.truth(transformed)
