"""Tests for spatial datalog (the [5]-style reference point)."""

from fractions import Fraction

import pytest

from repro.errors import EvaluationError
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.datalog import DatalogAtom, Program, Rule, evaluate_program

F = Fraction


def db(text: str, arity: int = 1, name: str = "S") -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity, name)


def atom(predicate: str, *variables: str) -> DatalogAtom:
    return DatalogAtom(predicate, tuple(variables))


def reach_program() -> Program:
    """reach(x) :- S(x), x = 0.
       reach(y) :- reach(x), S(y), |y - x| <= 1."""
    return Program((
        Rule(
            atom("Reach", "x"),
            (atom("S", "x"),),
            parse_formula("x = 0"),
        ),
        Rule(
            atom("Reach", "y"),
            (atom("Reach", "x"), atom("S", "y")),
            parse_formula("y - x <= 1 & x - y <= 1"),
        ),
    ))


class TestTerminatingPrograms:
    def test_reach_saturates_bounded_interval(self):
        outcome = evaluate_program(reach_program(), db("0 <= x0 & x0 <= 3"))
        assert outcome.converged
        reach = outcome["Reach"]
        assert reach.contains((F(3),))
        assert reach.contains((F(1, 2),))
        assert not reach.contains((F(4),))

    def test_reach_stops_at_gaps(self):
        outcome = evaluate_program(
            reach_program(),
            db("(0 <= x0 & x0 <= 1) | (5 <= x0 & x0 <= 6)"),
        )
        assert outcome.converged
        reach = outcome["Reach"]
        assert reach.contains((F(1),))
        assert not reach.contains((F(5),))

    def test_nonrecursive_program(self):
        program = Program((
            Rule(
                atom("Big", "x"),
                (atom("S", "x"),),
                parse_formula("x > 1"),
            ),
        ))
        outcome = evaluate_program(program, db("0 <= x0 & x0 <= 3"))
        assert outcome.converged
        assert outcome.stages <= 2
        assert outcome["Big"].contains((F(2),))
        assert not outcome["Big"].contains((F(1),))

    def test_two_idb_predicates(self):
        program = Program((
            Rule(atom("A", "x"), (atom("S", "x"),),
                 parse_formula("x <= 1")),
            Rule(atom("B", "x"), (atom("A", "x"),),
                 parse_formula("x >= 0")),
        ))
        outcome = evaluate_program(program, db("0 <= x0 & x0 <= 3"))
        assert outcome.converged
        assert outcome["B"].contains((F(1, 2),))
        assert not outcome["B"].contains((F(2),))

    def test_binary_idb(self):
        # Between(x, y): pairs of S-points with x <= y, closed under
        # nothing — a single non-recursive binary rule.
        program = Program((
            Rule(
                atom("Between", "x", "y"),
                (atom("S", "x"), atom("S", "y")),
                parse_formula("x <= y"),
            ),
        ))
        outcome = evaluate_program(program, db("0 <= x0 & x0 <= 2"))
        assert outcome.converged
        assert outcome["Between"].contains((F(0), F(2)))
        assert not outcome["Between"].contains((F(2), F(0)))


class TestDivergence:
    def test_successor_program_diverges(self):
        """The ℕ-style program: p(0); p(y) :- p(x), y = x + 1 on an
        unbounded domain never converges (the paper's warning again,
        now in datalog clothes)."""
        program = Program((
            Rule(atom("P", "x"), (atom("S", "x"),),
                 parse_formula("x = 0")),
            Rule(
                atom("P", "y"),
                (atom("P", "x"), atom("S", "y")),
                parse_formula("y = x + 1"),
            ),
        ))
        outcome = evaluate_program(
            program, db("x0 >= 0"), max_stages=8
        )
        assert not outcome.converged
        assert outcome.stages == 8
        # Stage sizes grow monotonically — no convergence in sight.
        assert outcome.stage_sizes == sorted(outcome.stage_sizes)
        assert outcome["P"].contains((F(5),))

    def test_same_program_converges_on_bounded_domain(self):
        program = Program((
            Rule(atom("P", "x"), (atom("S", "x"),),
                 parse_formula("x = 0")),
            Rule(
                atom("P", "y"),
                (atom("P", "x"), atom("S", "y")),
                parse_formula("y = x + 1"),
            ),
        ))
        outcome = evaluate_program(
            program, db("0 <= x0 & x0 <= 3"), max_stages=10
        )
        assert outcome.converged
        for value in range(4):
            assert outcome["P"].contains((F(value),))
        assert not outcome["P"].contains((F(1, 2),))


class TestValidation:
    def test_unknown_predicate(self):
        program = Program((
            Rule(atom("A", "x"), (atom("Nope", "x"),)),
        ))
        with pytest.raises(EvaluationError):
            evaluate_program(program, db("x0 > 0"))

    def test_arity_mismatch(self):
        program = Program((
            Rule(atom("A", "x"), (atom("S", "x", "y"),)),
        ))
        with pytest.raises(EvaluationError):
            evaluate_program(program, db("x0 > 0"))

    def test_repeated_variables_rejected(self):
        program = Program((
            Rule(atom("A", "x"), (atom("T", "x", "x"),)),
        ))
        database = db("x0 >= x1", arity=2, name="T")
        with pytest.raises(EvaluationError):
            evaluate_program(program, database)

    def test_inconsistent_head_arity(self):
        program = Program((
            Rule(atom("A", "x"), (atom("S", "x"),)),
            Rule(atom("A", "x", "y"), (atom("S", "x"), atom("S", "y"))),
        ))
        with pytest.raises(EvaluationError):
            evaluate_program(program, db("x0 > 0"))

    def test_program_str(self):
        text = str(reach_program())
        assert "Reach(x) :- S(x)" in text
