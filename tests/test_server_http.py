"""The HTTP wire path: real sockets, keep-alive, limits, parity.

The load-bearing assertion is *parity*: an answer served over HTTP is
exactly the answer :meth:`QueryEngine.evaluate` returns in-process —
same formula rendering, same witnesses, same truth values.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro import ConstraintDatabase, QueryEngine, parse_formula
from repro.config import EngineConfig
from repro.obs.metrics import MetricsRegistry
from repro.server import (
    ConstraintService,
    ServerThread,
    get_json,
    post_json,
    run_load,
)

QUERIES = (
    "S(x0)",
    "exists y. S(y) & x0 - y <= 1 & y - x0 <= 1",
    "forall x. S(x) -> x < 5",
)


def _db():
    return ConstraintDatabase.from_formula(
        parse_formula("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"), arity=1
    )


@pytest.fixture
def server():
    service = ConstraintService({"demo": _db()}, metrics=MetricsRegistry())
    with ServerThread(service) as running:
        yield running


def test_answers_match_direct_evaluation(server):
    engine = QueryEngine(_db(), config=EngineConfig())
    for query in QUERIES:
        status, body = post_json(server.port, "/v1/query",
                                 {"query": query})
        assert status == 200, body
        direct = engine.evaluate(query)
        answer = body["answer"]
        assert answer["empty"] == direct.is_empty()
        assert answer["variables"] == list(direct.variables)
        if direct.arity == 0:
            assert answer["truth"] == (not direct.is_empty())
        else:
            assert answer["formula"] == str(direct.formula)
            expected = [
                [str(c) for c in point]
                for point in direct.sample_points()[:5]
            ]
            assert answer["sample_points"] == expected


def test_concurrent_mixed_load_all_succeed(server):
    requests = [{"query": q} for q in QUERIES] * 4
    results = run_load(server.port, requests, concurrency=6)
    assert [r["status"] for r in results] == [200] * len(results)


def test_keep_alive_reuses_one_connection(server):
    connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                            timeout=30)
    try:
        for _round in range(3):
            connection.request(
                "POST", "/v1/query",
                body=json.dumps({"query": "S(x0)"}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            response.read()  # drain so the connection can be reused
    finally:
        connection.close()


def test_oversized_body_is_413(server):
    connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                            timeout=30)
    try:
        connection.putrequest("POST", "/v1/query")
        connection.putheader("Content-Length", str(64 * 1024 * 1024))
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 413
        body = json.loads(response.read())
        assert body["error"]["code"] == "body_too_large"
    finally:
        connection.close()


def test_bad_request_line_is_400(server):
    import socket

    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=30) as raw:
        raw.sendall(b"NONSENSE\r\n\r\n")
        reply = raw.recv(4096)
    assert reply.startswith(b"HTTP/1.1 400 ")


def test_explain_over_the_wire(server):
    status, body = post_json(server.port, "/v1/explain",
                             {"query": "S(x0)", "analyze": True})
    assert status == 200
    assert body["analyzed"] is True
    assert body["plan"]["op"]


def test_healthz_and_stats_over_the_wire(server):
    status, body = get_json(server.port, "/v1/healthz")
    assert status == 200 and body["status"] == "ok"
    status, body = get_json(server.port, "/v1/stats")
    assert status == 200
    assert body["requests"]["total"] >= 1
