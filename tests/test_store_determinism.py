"""Disk keys must be identical across interpreter runs.

Content-addressed persistence only works if two processes — started
with different ``PYTHONHASHSEED`` values, so any hidden dependence on
set/dict iteration order would change the output — derive the same
fingerprints and store keys for the same mathematical content.  This
suite runs a probe script in fresh interpreters under contrasting hash
seeds and compares every derived identifier byte for byte.
"""

import os
import pathlib
import subprocess
import sys

PROBE = r"""
import json
from repro.constraints.io import parse_formula
from repro.constraints.relation import ConstraintRelation
from repro.constraints.database import ConstraintDatabase
from repro.engine import database_fingerprint, relation_fingerprint
from repro.arrangement.builder import build_arrangement
from repro.store import codec

triangle = ConstraintRelation.make(
    ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
)
wedge = ConstraintRelation.make(
    ("x", "y"), parse_formula("x >= 0 & y <= x & y >= -1")
)
db = ConstraintDatabase.make({"S": triangle, "T": wedge})
arrangement = build_arrangement(triangle)

print(json.dumps({
    "db_fingerprint": database_fingerprint(db),
    "relation_fingerprints": [
        relation_fingerprint(triangle), relation_fingerprint(wedge),
    ],
    "arrangement_key": codec.arrangement_key(
        arrangement.hyperplanes, 2, triangle
    ),
    "result_key": codec.query_result_key(
        database_fingerprint(db), "arrangement", "S", "exists x. S(x, x)"
    ),
    "envelope_sha": codec.checksum(
        codec.SCHEMA_VERSION,
        "arrangement",
        codec.encode("arrangement", arrangement),
    ),
    "formula": str(triangle.formula),
}, sort_keys=True))
"""


def run_probe(hashseed: str) -> str:
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(src)
    env.pop("REPRO_CACHE_DIR", None)
    proc = subprocess.run(
        [sys.executable, "-c", PROBE],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


def test_fingerprints_and_keys_survive_hash_randomisation():
    outputs = {seed: run_probe(seed) for seed in ("0", "42", "31337")}
    assert len(set(outputs.values())) == 1, outputs


def test_fingerprint_is_cached_on_the_relation():
    from repro.constraints.io import parse_formula
    from repro.constraints.relation import ConstraintRelation
    from repro.engine import relation_fingerprint

    relation = ConstraintRelation.make(("x",), parse_formula("x <= 1"))
    first = relation.fingerprint()
    assert relation._cache["fingerprint"] == first
    assert relation_fingerprint(relation) == first
    twin = ConstraintRelation.make(("x",), parse_formula("x <= 1"))
    assert twin.fingerprint() == first
