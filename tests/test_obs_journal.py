"""Tests for the structured event journal and tracing edge cases.

Covers the ring buffer (bounds, drop counting), the JSONL sink, and the
central replay contract: folding a journal back into the exact span
tree the tracer built — byte-identical ``to_dict`` output — whether the
events come from the in-memory ring or from a JSONL file on disk.  Also
pins down the tracer behaviours the journal relies on: spans close and
re-raise on exceptions, and concurrent spans from a thread pool never
corrupt the tree.
"""

import concurrent.futures
import json

import pytest

from repro.obs import reset_all
from repro.obs.journal import (
    JOURNAL,
    Journal,
    journal_enabled,
    journal_scope,
    load_events,
    replay,
)
from repro.obs.tracing import TRACER, span


@pytest.fixture(autouse=True)
def _clean_slate():
    reset_all()
    yield
    reset_all()


def _tree(root) -> str:
    return json.dumps(root.to_dict(), sort_keys=True)


class TestJournalBuffer:
    def test_disabled_by_default(self):
        assert not journal_enabled()
        JOURNAL.emit("meta", note="dropped on the floor")
        assert len(JOURNAL) == 0

    def test_emit_and_stop(self):
        JOURNAL.start()
        JOURNAL.emit("meta", note="one")
        JOURNAL.emit("cache", layer="store", outcome="hit")
        events = JOURNAL.stop()
        assert [e["type"] for e in events] == ["meta", "cache"]
        assert [e["seq"] for e in events] == [0, 1]
        assert not JOURNAL.enabled

    def test_ring_is_bounded_and_counts_drops(self):
        journal = Journal(capacity=4)
        journal.start()
        for i in range(10):
            journal.emit("meta", i=i)
        events = journal.stop()
        assert len(events) == 4
        assert journal.dropped == 6
        assert [e["i"] for e in events] == [6, 7, 8, 9]

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "run.jsonl"
        JOURNAL.start(str(path))
        JOURNAL.emit("meta", command="test")
        JOURNAL.emit("counter", name="lp.solves", delta=3)
        JOURNAL.stop()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        loaded = load_events(path)
        assert loaded[0]["command"] == "test"
        assert loaded[1]["delta"] == 3

    def test_journal_scope(self, tmp_path):
        path = tmp_path / "scoped.jsonl"
        with journal_scope(str(path)) as journal:
            journal.emit("meta", scoped=True)
            assert journal_enabled()
        assert not journal_enabled()
        assert load_events(path)[0]["scoped"] is True


class TestReplay:
    def _run_traced_work(self):
        TRACER.start("unit")
        with TRACER.span("outer") as outer:
            outer.set("k", 1)
            with TRACER.span("inner", aggregate=True) as inner:
                inner.add("calls_like", 2)
            with TRACER.span("inner", aggregate=True):
                pass
        return TRACER.stop()

    def test_replay_matches_live_tree_from_ring(self):
        JOURNAL.start()
        live = self._run_traced_work()
        events = JOURNAL.stop()
        result = replay(events)
        assert _tree(result.root) == _tree(live)

    def test_replay_matches_live_tree_from_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        JOURNAL.start(str(path))
        live = self._run_traced_work()
        JOURNAL.stop()
        result = replay(str(path))
        assert _tree(result.root) == _tree(live)

    def test_replay_keeps_non_span_events(self):
        JOURNAL.start()
        JOURNAL.emit("cache", layer="engine", outcome="miss")
        self._run_traced_work()
        events = JOURNAL.stop()
        result = replay(events)
        assert result.events_of_type("cache")
        assert result.root is not None


class TestTracingEdges:
    def test_exception_closes_span_and_reraises(self):
        TRACER.start("unit")
        with pytest.raises(ValueError, match="boom"):
            with TRACER.span("failing"):
                raise ValueError("boom")
        # The span must have been closed and adopted despite the raise:
        # a sibling span opened afterwards lands at the same depth.
        with TRACER.span("after"):
            pass
        root = TRACER.stop()
        assert [child.name for child in root.children] == \
            ["failing", "after"]

    def test_thread_pool_spans_do_not_corrupt_tree(self):
        TRACER.start("unit")

        def work(index: int) -> int:
            with span(f"worker-{index}"):
                with span("step"):
                    pass
            return index

        with TRACER.span("fanout"):
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=4
            ) as pool:
                assert sorted(pool.map(work, range(8))) == list(range(8))
        root = TRACER.stop()
        names = {child.name for child in root.children}
        # Worker threads have no parent frame on their own stacks, so
        # their spans adopt at the root, never inside each other.
        assert "fanout" in names
        workers = [
            child for child in root.children
            if child.name.startswith("worker-")
        ]
        assert len(workers) == 8
        for worker in workers:
            assert [c.name for c in worker.children] == ["step"]

    def test_thread_pool_under_journal_replays_cleanly(self):
        JOURNAL.start()
        TRACER.start("unit")

        def work(index: int) -> None:
            with span("job", aggregate=True):
                pass

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(16)))
        live = TRACER.stop()
        events = JOURNAL.stop()
        assert _tree(replay(events).root) == _tree(live)
