"""Ground fixpoint compilation and the SQLite lowering.

Three executor paths exist for a RegLFP induction — the interpreted
per-candidate loop, the compiled boolean-skeleton closures of
:mod:`repro.ir.ground`, and (for linear ground LFP bodies) the SQL
step of :mod:`repro.ir.sqlite`.  All three share the same fixpoint
driver, journal wrapper and stage counter, so they must agree not just
on truth values but on the exact stage-set sequence.  These tests pin
that down directly at the :meth:`Evaluator.fixpoint_run` level, check
the linearity analysis's soundness guards (negation and universal
region quantification poison the member-wise decomposition), and
validate the ``WITH RECURSIVE`` out-of-core form against the staged
result.
"""

import dataclasses

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.ir.ground import compile_fixpoint_step, linear_decomposition
from repro.ir.sqlite import SQLiteGroundFixpoint
from repro.logic import ast
from repro.logic.evaluator import Evaluator
from repro.logic.parser import parse_query
from repro.obs.journal import JOURNAL
from repro.twosorted.structure import RegionExtension


def db(text: str, arity: int = 1) -> ConstraintDatabase:
    return ConstraintDatabase.from_formula(parse_formula(text), arity)


INTERVAL = db("0 < x0 & x0 < 1")
TWO_INTERVALS = db("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)")
TOUCHING = db("(0 < x0 & x0 < 1) | (1 <= x0 & x0 < 2)")

CONN_1D = (
    "forall x1, x2. (S(x1) & S(x2)) -> "
    "(exists RX, RY. (x1) in RX & (x2) in RY & "
    "[lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
    "(exists Z. M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](RX, RY))"
)


def find_fixpoint(node):
    """The first :class:`ast.Fixpoint` in a parsed query, depth-first."""
    if isinstance(node, ast.Fixpoint):
        return node
    if not dataclasses.is_dataclass(node):
        return None
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        items = value if isinstance(value, tuple) else (value,)
        for item in items:
            if isinstance(item, ast.RegFormula):
                found = find_fixpoint(item)
                if found is not None:
                    return found
    return None


def evaluators(database):
    """(interpreted, compiled, compiled+sqlite) over one extension."""
    extension = RegionExtension.build(database)
    return (
        Evaluator(extension, executor="interpreted"),
        Evaluator(extension, executor="compiled"),
        Evaluator(extension, executor="compiled", backend="sqlite"),
    )


class TestExecutorEquivalence:
    def test_conn1d_truth_and_stages_agree(self):
        expected = {
            "INTERVAL": True,
            "TWO_INTERVALS": False,
            "TOUCHING": True,
        }
        for name, database in (
            ("INTERVAL", INTERVAL),
            ("TWO_INTERVALS", TWO_INTERVALS),
            ("TOUCHING", TOUCHING),
        ):
            query = parse_query(CONN_1D)
            interpreted, compiled, lowered = evaluators(database)
            truths = [ev.truth(query) for ev in (interpreted, compiled, lowered)]
            assert truths == [expected[name]] * 3, name
            stages = [
                ev.metrics.get("fixpoint_stages")
                for ev in (interpreted, compiled, lowered)
            ]
            assert stages[1] == stages[0], name
            assert stages[2] == stages[0], name

    def test_fixpoint_run_sets_identical(self):
        formula = find_fixpoint(parse_query(CONN_1D))
        for database in (INTERVAL, TWO_INTERVALS, TOUCHING):
            runs = [
                ev.fixpoint_run(formula) for ev in evaluators(database)
            ]
            assert runs[1].result == runs[0].result
            assert runs[2].result == runs[0].result
            assert runs[1].stages == runs[0].stages
            assert runs[2].stages == runs[0].stages

    def test_fixpoint_journal_events_identical(self):
        formula = find_fixpoint(parse_query(CONN_1D))
        events = []
        for evaluator in evaluators(TOUCHING):
            JOURNAL.start()
            try:
                evaluator.fixpoint_run(formula)
            finally:
                recorded = JOURNAL.stop()
            events.append([
                {
                    key: value
                    for key, value in event.items()
                    if key in ("operator", "stage", "size", "delta")
                }
                for event in recorded
                if event["type"] == "fixpoint.stage"
            ])
        assert events[0], "expected fixpoint.stage events"
        assert events[1] == events[0]
        assert events[2] == events[0]

    def test_out_of_fragment_body_falls_back_silently(self):
        # An element quantifier over the set variable is outside the
        # ground compilation fragment: compile_fixpoint_step must decline
        # and the compiled evaluator must still agree with the oracle.
        query = (
            "exists X. [lfp M(R). sub(R, S) | "
            "(exists x. (x) in R & M(R))](X)"
        )
        formula = find_fixpoint(parse_query(query))
        for database in (INTERVAL, TWO_INTERVALS):
            interpreted, compiled, lowered = evaluators(database)
            assert compile_fixpoint_step(formula, compiled, {}) is None
            parsed = parse_query(query)
            assert compiled.truth(parsed) == interpreted.truth(parsed)
            assert lowered.truth(parsed) == interpreted.truth(parsed)


class TestLinearDecomposition:
    def test_conn_body_is_linear_and_closure_matches(self):
        formula = find_fixpoint(parse_query(CONN_1D))
        extension = RegionExtension.build(TOUCHING)
        evaluator = Evaluator(extension, executor="compiled")
        decomposed = linear_decomposition(formula, evaluator, {})
        assert decomposed is not None
        base, edge = decomposed
        assert base
        # Reachability closure of (base, edge) computed in plain Python
        # equals the evaluator's LFP result.
        reached = set(base)
        frontier = set(base)
        while frontier:
            nxt = {
                target
                for member, target in edge
                if member in frontier and target not in reached
            }
            reached |= nxt
            frontier = nxt
        run = evaluator.fixpoint_run(formula)
        assert frozenset(reached) == run.result

    def test_edge_excludes_base_rows(self):
        formula = find_fixpoint(parse_query(CONN_1D))
        evaluator = Evaluator(
            RegionExtension.build(TOUCHING), executor="compiled"
        )
        base, edge = linear_decomposition(formula, evaluator, {})
        assert all(target not in base for _, target in edge)

    def test_universal_region_quantifier_poisons(self):
        # ∀Z.M(R) evaluates the set atom at several bindings; the
        # member-wise decomposition would be unsound, so the analysis
        # must bail even though the body compiles fine.
        query = "exists X. [lfp M(R). sub(R, S) | (forall Z. M(R))](X)"
        formula = find_fixpoint(parse_query(query))
        evaluator = Evaluator(
            RegionExtension.build(INTERVAL), executor="compiled"
        )
        assert compile_fixpoint_step(formula, evaluator, {}) is not None
        assert linear_decomposition(formula, evaluator, {}) is None

    def test_negation_poisons(self):
        # PFP admits negated set atoms; linearity analysis must refuse.
        query = "exists X. [pfp M(R). !M(R)](X)"
        formula = find_fixpoint(parse_query(query))
        evaluator = Evaluator(
            RegionExtension.build(INTERVAL), executor="compiled"
        )
        assert linear_decomposition(formula, evaluator, {}) is None

    def test_nonlinear_body_declines(self):
        # Two set atoms: not linear, even though both are positive.
        query = "exists X. [lfp M(R). M(R) | (M(R) & sub(R, S))](X)"
        formula = find_fixpoint(parse_query(query))
        evaluator = Evaluator(
            RegionExtension.build(INTERVAL), executor="compiled"
        )
        assert linear_decomposition(formula, evaluator, {}) is None


class TestSQLiteGroundFixpoint:
    BASE = {(0,), (1,)}
    EDGE = {((0,), (2,)), ((2,), (3,)), ((5,), (6,))}

    def python_closure(self):
        reached = set(self.BASE)
        changed = True
        while changed:
            changed = False
            for member, target in self.EDGE:
                if member in reached and target not in reached:
                    reached.add(target)
                    changed = True
        return frozenset(reached)

    def test_step_sequence_matches_python(self):
        with SQLiteGroundFixpoint(self.BASE, self.EDGE, 1) as lowered:
            current = frozenset()
            seen = []
            while True:
                nxt = lowered.step(current)
                if nxt == current:
                    break
                seen.append(nxt)
                current = nxt
            assert current == self.python_closure()
            # Stage 1 is exactly the base; stages are monotone.
            assert seen[0] == frozenset(self.BASE)
            for earlier, later in zip(seen, seen[1:]):
                assert earlier < later

    def test_recursive_cte_matches_staged_result(self):
        with SQLiteGroundFixpoint(self.BASE, self.EDGE, 1) as lowered:
            assert lowered.run_recursive_cte() == self.python_closure()
            sql = lowered.recursive_cte_sql()
            assert "WITH RECURSIVE" in sql

    def test_binary_arity(self):
        base = {(0, 1)}
        edge = {((0, 1), (1, 2)), ((1, 2), (2, 3))}
        with SQLiteGroundFixpoint(base, edge, 2) as lowered:
            current = frozenset()
            while True:
                nxt = lowered.step(current)
                if nxt == current:
                    break
                current = nxt
            assert current == {(0, 1), (1, 2), (2, 3)}
            assert lowered.run_recursive_cte() == current

    def test_rejects_zero_arity(self):
        import pytest

        with pytest.raises(ValueError):
            SQLiteGroundFixpoint(set(), set(), 0)
