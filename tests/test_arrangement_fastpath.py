"""Tests for the arrangement fast path: witness reuse, system dedup,
process-parallel construction, and the sign-index cache."""

from fractions import Fraction

import pytest

from repro.arrangement.builder import (
    Arrangement,
    build_arrangement,
    enumerate_sign_vectors,
)
from repro.arrangement.parallel import resolve_jobs
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.simplex import clear_feasibility_cache
from repro.obs.metrics import get_registry

F = Fraction


def generic_lines(n: int) -> list[Hyperplane]:
    return [Hyperplane.make([2 * i, -1], i * i) for i in range(1, n + 1)]


def signs_of(arrangement: Arrangement) -> list[tuple[int, ...]]:
    return [face.signs for face in arrangement.faces]


class TestWitnessReuse:
    def test_fast_path_matches_naive_enumeration(self):
        planes = generic_lines(4)
        fast = list(enumerate_sign_vectors(planes, 2))
        naive = list(
            enumerate_sign_vectors(
                planes, 2, witness_reuse=False, dedup=False
            )
        )
        assert [signs for signs, __ in fast] == [
            signs for signs, __ in naive
        ]

    def test_lp_skipped_metric_increments(self):
        registry = get_registry()
        before = registry.get("arrangement.lp_skipped")
        build_arrangement(hyperplanes=generic_lines(3), dimension=2)
        assert registry.get("arrangement.lp_skipped") > before

    def test_lp_skipped_stays_flat_when_disabled(self):
        registry = get_registry()
        before = registry.get("arrangement.lp_skipped")
        build_arrangement(
            hyperplanes=generic_lines(3),
            dimension=2,
            witness_reuse=False,
            dedup=False,
        )
        assert registry.get("arrangement.lp_skipped") == before

    def test_fast_path_needs_fewer_lp_solves(self):
        planes = generic_lines(4)
        registry = get_registry()
        clear_feasibility_cache()
        before = registry.get("lp.solves")
        build_arrangement(
            hyperplanes=planes, dimension=2,
            witness_reuse=False, dedup=False,
        )
        naive_solves = registry.get("lp.solves") - before
        clear_feasibility_cache()
        before = registry.get("lp.solves")
        build_arrangement(hyperplanes=planes, dimension=2)
        fast_solves = registry.get("lp.solves") - before
        assert fast_solves < naive_solves / 2


class TestSystemDedup:
    def test_duplicate_hyperplanes_hit_the_memo(self):
        registry = get_registry()
        plane = Hyperplane.make([1], 0)
        before = registry.get("arrangement.dedup_hits")
        arrangement = build_arrangement(
            hyperplanes=[plane, plane], dimension=1
        )
        assert registry.get("arrangement.dedup_hits") > before
        # Coincident planes: only the concordant sign vectors survive.
        assert signs_of(arrangement) == [(-1, -1), (0, 0), (1, 1)]

    def test_dedup_does_not_change_faces(self):
        planes = [
            Hyperplane.make([1], 0),
            Hyperplane.make([2], 0),  # a multiple of the first
            Hyperplane.make([1], 1),
        ]
        with_dedup = build_arrangement(hyperplanes=planes, dimension=1)
        without = build_arrangement(
            hyperplanes=planes, dimension=1, dedup=False
        )
        assert signs_of(with_dedup) == signs_of(without)


class TestParallelConstruction:
    def test_parallel_matches_sequential_face_list(self):
        planes = generic_lines(4)
        sequential = build_arrangement(hyperplanes=planes, dimension=2)
        parallel = build_arrangement(
            hyperplanes=planes, dimension=2, parallel=2
        )
        assert signs_of(parallel) == signs_of(sequential)
        assert [f.index for f in parallel.faces] == [
            f.index for f in sequential.faces
        ]

    def test_parallel_build_metrics(self):
        registry = get_registry()
        builds = registry.get("arrangement.parallel_builds")
        subtrees = registry.get("arrangement.parallel_subtrees")
        fallbacks = registry.get("arrangement.parallel_fallbacks")
        build_arrangement(
            hyperplanes=generic_lines(3), dimension=2, parallel=2
        )
        ran = registry.get("arrangement.parallel_builds") - builds
        fell_back = (
            registry.get("arrangement.parallel_fallbacks") - fallbacks
        )
        # Worker pools may be unavailable in a sandbox; either way the
        # attempt is visible in exactly one of the two counters.
        assert ran + fell_back == 1
        if ran:
            assert registry.get("arrangement.parallel_subtrees") > subtrees

    def test_single_job_stays_sequential(self):
        registry = get_registry()
        before = registry.get("arrangement.parallel_builds")
        build_arrangement(
            hyperplanes=generic_lines(3), dimension=2, parallel=1
        )
        assert registry.get("arrangement.parallel_builds") == before

    def test_resolve_jobs_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(2) == 2
        assert resolve_jobs(None) == 4

    def test_resolve_jobs_defaults_and_clamps(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert resolve_jobs(None) == 1

    def test_seeded_prefix_needs_witness(self):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            list(
                enumerate_sign_vectors(
                    generic_lines(2), 2, prefix=(0,)
                )
            )


class TestSignIndexCache:
    def test_two_lookups_build_the_index_once(self):
        arrangement = build_arrangement(
            hyperplanes=generic_lines(3), dimension=2
        )
        registry = get_registry()
        before = registry.get("arrangement.sign_index_builds")
        first = arrangement.face_by_signs(arrangement.faces[0].signs)
        second = arrangement.face_by_signs(arrangement.faces[-1].signs)
        assert first is arrangement.faces[0]
        assert second is arrangement.faces[-1]
        assert (
            registry.get("arrangement.sign_index_builds") == before + 1
        )

    def test_locate_reuses_the_index(self):
        arrangement = build_arrangement(
            hyperplanes=generic_lines(3), dimension=2
        )
        registry = get_registry()
        before = registry.get("arrangement.sign_index_builds")
        for face in arrangement.faces[:4]:
            assert arrangement.locate(face.sample) is face
        assert (
            registry.get("arrangement.sign_index_builds") == before + 1
        )

    def test_index_survives_equality_and_hash(self):
        # The cache dict is excluded from the dataclass comparison: two
        # structurally equal arrangements compare equal whether or not
        # their lazy indexes have been materialised.
        planes = generic_lines(2)
        one = build_arrangement(hyperplanes=planes, dimension=2)
        two = build_arrangement(hyperplanes=planes, dimension=2)
        one.face_by_signs(one.faces[0].signs)
        assert one == two
