"""Tests for the observability subsystem (repro.obs).

Covers the metrics registry (counters, parent roll-up, live views,
reset isolation) and the tracer (span trees, aggregation, the traced
decorator, and the disabled-is-free contract the hot paths rely on).
"""

import pytest

from repro.obs.metrics import (
    Counter,
    MetricsRegistry,
    MetricsView,
    get_registry,
    metrics_snapshot,
    reset_metrics,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TRACER,
    span,
    traced,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_slate():
    """Every test here starts from zeroed metrics and a stopped tracer."""
    reset_metrics()
    if TRACER.enabled:
        TRACER.stop()
    yield
    reset_metrics()
    if TRACER.enabled:
        TRACER.stop()


class TestCounter:
    def test_inc_and_reset(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_parent_propagation(self):
        parent = Counter("parent")
        child = Counter("child", parent)
        child.inc(3)
        assert child.value == 3
        assert parent.value == 3
        # Resetting the child keeps the parent's accumulated total.
        child.reset()
        assert child.value == 0
        assert parent.value == 3


class TestMetricsRegistry:
    def test_counter_is_created_once(self):
        registry = MetricsRegistry()
        first = registry.counter("a")
        second = registry.counter("a")
        assert first is second
        assert registry.get("a") == 0
        assert registry.get("never.touched") == 0

    def test_snapshot_and_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("lp.solves").inc(2)
        registry.counter("lp.cache_hits").inc(1)
        registry.counter("fm.eliminated").inc(7)
        assert registry.snapshot() == {
            "fm.eliminated": 7,
            "lp.cache_hits": 1,
            "lp.solves": 2,
        }
        assert registry.snapshot(prefix="lp.") == {
            "lp.cache_hits": 1,
            "lp.solves": 2,
        }

    def test_reset_prefix(self):
        registry = MetricsRegistry()
        registry.counter("lp.solves").inc(2)
        registry.counter("fm.eliminated").inc(7)
        registry.reset(prefix="lp.")
        assert registry.get("lp.solves") == 0
        assert registry.get("fm.eliminated") == 7
        registry.reset()
        assert registry.get("fm.eliminated") == 0

    def test_parent_rollup_with_prefix(self):
        parent = MetricsRegistry()
        scoped = MetricsRegistry(parent=parent, prefix="evaluator.")
        scoped.counter("evaluations").inc(5)
        assert scoped.get("evaluations") == 5
        assert parent.get("evaluator.evaluations") == 5
        # Two scoped registries share the parent's aggregate counter.
        other = MetricsRegistry(parent=parent, prefix="evaluator.")
        other.counter("evaluations").inc(2)
        assert other.get("evaluations") == 2
        assert parent.get("evaluator.evaluations") == 7

    def test_scoped_reset_keeps_parent(self):
        parent = MetricsRegistry()
        scoped = MetricsRegistry(parent=parent, prefix="evaluator.")
        scoped.counter("evaluations").inc(5)
        scoped.reset()
        assert scoped.get("evaluations") == 0
        assert parent.get("evaluator.evaluations") == 5

    def test_contains_len_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert "a" in registry and "c" not in registry
        assert len(registry) == 2
        assert registry.names() == ["a", "b"]


class TestMetricsView:
    def test_live_mapping(self):
        registry = MetricsRegistry()
        solves = registry.counter("lp.solves")
        view = MetricsView(registry, {"solves": "lp.solves"})
        assert view["solves"] == 0
        solves.inc(3)
        assert view["solves"] == 3          # live, not a copy
        assert dict(view) == {"solves": 3}
        assert list(view) == ["solves"]
        assert len(view) == 1

    def test_snapshot_is_detached(self):
        registry = MetricsRegistry()
        solves = registry.counter("lp.solves")
        view = MetricsView(registry, {"solves": "lp.solves"})
        frozen = view.snapshot()
        solves.inc()
        assert frozen == {"solves": 0}
        assert view["solves"] == 1


class TestGlobalRegistryIsolation:
    """reset_metrics gives tests a hermetic slate (satellite criterion)."""

    def test_global_registry_resets_between_tests_a(self):
        assert get_registry().get("isolation.probe") == 0
        get_registry().counter("isolation.probe").inc()
        assert metrics_snapshot(prefix="isolation.")["isolation.probe"] == 1

    def test_global_registry_resets_between_tests_b(self):
        # The autouse fixture zeroed whatever test A incremented.
        assert get_registry().get("isolation.probe") == 0

    def test_lp_statistics_shim_is_a_view(self):
        # The shim is deprecated (it warns once per process; see
        # test_deprecation_shims.py) but must stay a live view of the
        # registry counters until it is removed.
        import warnings

        from repro.geometry.simplex import lp_statistics, reset_lp_statistics

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            reset_lp_statistics()
            stats = lp_statistics()
            assert stats["solves"] == 0 and stats["cache_hits"] == 0
            get_registry().counter("lp.solves").inc(2)
            assert lp_statistics()["solves"] == 2


class TestTracer:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        assert TRACER.current() is NULL_SPAN
        context = TRACER.span("anything")
        assert context is span("anything")   # the shared no-op singleton
        with context as inert:
            inert.add("k")                   # absorbed, no error
            inert.set("k", 1)

    def test_start_stop_builds_a_tree(self):
        TRACER.start("root")
        assert tracing_enabled()
        with TRACER.span("outer") as outer:
            outer.set("label", "x")
            with TRACER.span("inner"):
                pass
        root = TRACER.stop()
        assert not tracing_enabled()
        assert root.name == "root"
        assert root.wall_s >= 0.0
        assert [c.name for c in root.children] == ["outer"]
        assert root.find("inner") is not None
        assert root.find("missing") is None

    def test_aggregate_spans_merge(self):
        TRACER.start("root")
        for __ in range(5):
            with TRACER.span("hot", aggregate=True) as hot:
                hot.add("items", 2)
        root = TRACER.stop()
        assert len(root.children) == 1
        hot = root.children[0]
        assert hot.calls == 5
        assert hot.attrs["items"] == 10

    def test_non_aggregate_spans_stay_separate(self):
        TRACER.start("root")
        with TRACER.span("step"):
            pass
        with TRACER.span("step"):
            pass
        root = TRACER.stop()
        assert len(root.children) == 2

    def test_current_targets_innermost(self):
        TRACER.start("root")
        with TRACER.span("outer"):
            TRACER.current().add("hits", 1)
        root = TRACER.stop()
        assert root.find("outer").attrs["hits"] == 1
        assert "hits" not in root.attrs

    def test_to_dict_shape(self):
        TRACER.start("root")
        with TRACER.span("child") as inner:
            inner.set("n", 3)
        tree = TRACER.stop().to_dict()
        assert set(tree) == {"name", "calls", "wall_ms", "children"}
        child = tree["children"][0]
        assert child["name"] == "child"
        assert child["calls"] == 1
        assert child["attrs"] == {"n": 3}
        assert isinstance(child["wall_ms"], float)

    def test_format_renders_every_span(self):
        TRACER.start("root")
        with TRACER.span("child"):
            pass
        text = TRACER.stop().format()
        assert "root:" in text and "child:" in text

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            TRACER.stop()

    def test_span_merge_combines_numeric_attrs(self):
        left = Span("s", items=2, label="a")
        right = Span("s", items=3, label="b")
        left.merge(right)
        assert left.calls == 2
        assert left.attrs["items"] == 5
        assert left.attrs["label"] == "b"


class TestTracedDecorator:
    def test_passthrough_when_disabled(self):
        @traced("decorated")
        def add(a, b):
            """docstring survives"""
            return a + b

        assert add(1, 2) == 3
        assert add.__name__ == "add"
        assert add.__doc__ == "docstring survives"

    def test_records_aggregate_span_when_enabled(self):
        @traced("decorated")
        def add(a, b):
            return a + b

        TRACER.start("root")
        assert add(1, 2) == 3
        assert add(3, 4) == 7
        root = TRACER.stop()
        node = root.find("decorated")
        assert node is not None and node.calls == 2

    def test_default_label_is_qualname(self):
        @traced()
        def helper():
            return 1

        TRACER.start("root")
        helper()
        root = TRACER.stop()
        found = [c.name for c in root.children]
        assert any("helper" in name for name in found)
