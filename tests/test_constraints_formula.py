"""Tests for the formula AST, normal forms and the parser."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormulaError, ParseError
from repro.constraints.atoms import Atom, Op
from repro.constraints.formula import (
    And,
    AtomFormula,
    Exists,
    Forall,
    Not,
    Or,
    conjunction,
    disjunction,
    fresh_variable,
    FALSE,
    TRUE,
)
from repro.constraints.normal_forms import dnf_to_formula, to_dnf, to_nnf
from repro.constraints.parser import parse_formula, parse_term
from repro.constraints.terms import LinearTerm

F = Fraction
x = LinearTerm.variable("x")
y = LinearTerm.variable("y")


def atom(term, op, rhs=0):
    return AtomFormula(Atom.compare(term, op, LinearTerm.const(rhs)))


class TestFormulaBasics:
    def test_free_variables(self):
        f = Exists("x", atom(x + y, Op.LE))
        assert f.free_variables() == {"y"}

    def test_evaluate_qf(self):
        f = (atom(x, Op.GT) & atom(y, Op.LT)) | atom(x + y, Op.EQ)
        assert f.evaluate({"x": F(1), "y": F(-1)})
        assert f.evaluate({"x": F(2), "y": F(-2)})
        assert not f.evaluate({"x": F(-1), "y": F(2)})

    def test_quantified_evaluate_rejected(self):
        with pytest.raises(FormulaError):
            Exists("x", atom(x, Op.LE)).evaluate({})

    def test_connective_builders(self):
        assert conjunction([]) is TRUE
        assert disjunction([]) is FALSE
        assert conjunction([TRUE, atom(x, Op.LE)]) == atom(x, Op.LE)
        assert conjunction([FALSE, atom(x, Op.LE)]) is FALSE
        assert disjunction([TRUE, atom(x, Op.LE)]) is TRUE

    def test_nested_flattening(self):
        f = conjunction([And((atom(x, Op.LE), atom(y, Op.LE))), atom(x, Op.GT)])
        assert isinstance(f, And)
        assert len(f.operands) == 3

    def test_size_positive(self):
        f = Exists("x", Not(atom(x + y, Op.LE)))
        assert f.size() > 3

    def test_fresh_variable(self):
        assert fresh_variable({"v_0", "v_1"}, "v") == "v_2"


class TestSubstitution:
    def test_simple_substitution(self):
        f = atom(x + y, Op.LE)
        g = f.substitute({"x": LinearTerm.const(1)})
        assert g.evaluate({"y": F(-2)})
        assert not g.evaluate({"y": F(0)})

    def test_capture_avoidance(self):
        # (EXISTS x. x <= y)[y := x] must NOT capture: result is
        # EXISTS x'. x' <= x, which is always true.
        f = Exists("x", atom(x - y, Op.LE))
        g = f.substitute({"y": x})
        assert isinstance(g, Exists)
        assert g.variable != "x" or "x" not in g.body.free_variables()
        assert g.free_variables() == {"x"}

    def test_bound_variable_untouched(self):
        f = Exists("x", atom(x - y, Op.LE))
        g = f.substitute({"x": LinearTerm.const(99)})
        assert g == f

    def test_rename(self):
        f = atom(x + y, Op.EQ)
        g = f.rename({"x": "a"})
        assert g.free_variables() == {"a", "y"}


class TestNormalForms:
    def test_nnf_removes_not(self):
        f = Not(atom(x, Op.LE) & Not(atom(y, Op.GT)))
        nnf = to_nnf(f)
        assert "Not" not in type(nnf).__name__
        for point in [{"x": F(v1), "y": F(v2)}
                      for v1 in (-1, 0, 1) for v2 in (-1, 0, 1)]:
            assert f.evaluate(point) == nnf.evaluate(point)

    def test_nnf_eq_negation_splits(self):
        f = Not(atom(x, Op.EQ))
        nnf = to_nnf(f)
        assert isinstance(nnf, Or)
        assert nnf.evaluate({"x": F(1)})
        assert not nnf.evaluate({"x": F(0)})

    def test_dnf_structure(self):
        f = (atom(x, Op.LE) | atom(y, Op.LE)) & atom(x + y, Op.GT)
        disjuncts = to_dnf(f)
        assert len(disjuncts) == 2
        assert all(len(d) == 2 for d in disjuncts)

    def test_dnf_drops_false_disjuncts(self):
        contradiction = AtomFormula(
            Atom.compare(LinearTerm.const(1), Op.LT, LinearTerm.const(0))
        )
        f = contradiction | atom(x, Op.LE)
        assert len(to_dnf(f)) == 1

    def test_dnf_true(self):
        assert to_dnf(TRUE) == [()]
        assert to_dnf(FALSE) == []

    def test_dnf_quantifier_rejected(self):
        with pytest.raises(FormulaError):
            to_dnf(Exists("x", atom(x, Op.LE)))

    @given(
        values=st.lists(
            st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_dnf_preserves_semantics(self, values):
        f = Not(
            (atom(x - 1, Op.LE) & atom(y, Op.GT))
            | Not(atom(x + y, Op.EQ) | atom(x - y, Op.LT))
        )
        g = dnf_to_formula(to_dnf(f))
        for vx, vy in values:
            env = {"x": F(vx), "y": F(vy)}
            assert f.evaluate(env) == g.evaluate(env)


class TestParser:
    def test_parse_term(self):
        term = parse_term("2*x + y - 3/2")
        assert term.coefficient("x") == F(2)
        assert term.constant == F(-3, 2)

    def test_parse_comparison_chain(self):
        f = parse_formula("0 <= x < 1")
        assert f.evaluate({"x": F(1, 2)})
        assert f.evaluate({"x": F(0)})
        assert not f.evaluate({"x": F(1)})

    def test_parse_connectives(self):
        f = parse_formula("x > 0 & y > 0 | x = y")
        assert f.evaluate({"x": F(1), "y": F(2)})
        assert f.evaluate({"x": F(-1), "y": F(-1)})
        assert not f.evaluate({"x": F(-1), "y": F(1)})

    def test_parse_not_equal(self):
        f = parse_formula("x != 0")
        assert f.evaluate({"x": F(1)})
        assert not f.evaluate({"x": F(0)})

    def test_parse_quantifiers(self):
        f = parse_formula("EXISTS x. x > y")
        assert isinstance(f, Exists)
        g = parse_formula("forall x, y. x + y = 0")
        assert isinstance(g, Forall)
        assert isinstance(g.body, Forall)

    def test_parse_implication(self):
        f = parse_formula("x > 0 -> x >= 0")
        assert f.evaluate({"x": F(1)})
        assert f.evaluate({"x": F(-1)})

    def test_parse_iff(self):
        f = parse_formula("x > 0 <-> 0 < x")
        assert f.evaluate({"x": F(5)})
        assert f.evaluate({"x": F(-5)})

    def test_parenthesised_term_comparison(self):
        f = parse_formula("(x + y) <= 2")
        assert f.evaluate({"x": F(1), "y": F(1)})

    def test_parse_negative_and_rationals(self):
        f = parse_formula("-x <= 1/3")
        assert f.evaluate({"x": F(0)})
        assert not f.evaluate({"x": F(-1)})

    def test_parse_true_false(self):
        assert parse_formula("true") is TRUE
        assert parse_formula("false") is FALSE

    def test_parse_errors(self):
        for bad in ["x +", "x <", "(x > 0", "x > 0)", "exists . x > 0",
                    "x ** y", "3x"]:
            with pytest.raises(ParseError):
                parse_formula(bad)

    def test_keyword_not_a_variable(self):
        with pytest.raises(ParseError):
            parse_formula("exists true. true > 0")

    def test_roundtrip_str_parse(self):
        f = parse_formula("(x > 0 & y > 0) | (x + y = 1)")
        g = parse_formula(str(f))
        for vx in (-1, 0, 1):
            for vy in (-1, 0, 2):
                env = {"x": F(vx), "y": F(vy)}
                assert f.evaluate(env) == g.evaluate(env)
