"""Metamorphic identities of the incremental maintenance layer.

Three families of "nothing downstream can tell" properties:

* **write/undo** — applying a delta and its inverse restores the exact
  original fingerprint, the original answers byte for byte, and leaves
  every pre-existing disk-store entry byte-identical (content
  addressing plus the no-overwrite rule);
* **lineage replay** — every recorded version is reconstructible from
  its persisted delta chain, verified by fingerprint at each hop;
* **compaction** — folding a chain back into a snapshot changes how a
  version is stored, never what it answers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.config import EngineConfig
from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_formula
from repro.engine import EngineCache, QueryEngine, database_fingerprint
from repro.incremental import (
    LineageLog,
    apply_delta,
    invert,
    make_delta,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.store import lineage_key, store_at
from repro.store.lineage import LineageRecord

QUERY = "S(x) & x < 4"


def _db(text="(0 <= x0 & x0 <= 1) | (2 <= x0 & x0 <= 3)"):
    return ConstraintDatabase.from_formula(parse_formula(text), 1)


def _engine(database, tmp_path):
    return QueryEngine(
        database,
        cache=EngineCache(metrics=MetricsRegistry()),
        config=EngineConfig(cache_dir=str(tmp_path), optimizer="off"),
    )


def _store_bytes(root) -> dict[pathlib.Path, bytes]:
    return {
        path: path.read_bytes()
        for path in pathlib.Path(root).rglob("*")
        if path.is_file()
    }


def test_write_undo_restores_fingerprint_and_store_bytes(tmp_path):
    """insert ∘ retract = identity: fingerprint, answers, store bytes."""
    engine = _engine(_db(), tmp_path)
    original_print = engine.fingerprint
    original_answer = str(engine.evaluate(QUERY).formula)
    before = _store_bytes(tmp_path)
    assert before, "the first evaluation persists store entries"

    delta = make_delta(("insert", "S", "(5 <= x0 & x0 <= 6)"))
    engine.apply_delta(delta)
    assert engine.fingerprint != original_print
    engine.evaluate(QUERY)
    engine.apply_delta(invert(delta))

    assert engine.fingerprint == original_print
    assert str(engine.evaluate(QUERY).formula) == original_answer
    after = _store_bytes(tmp_path)
    for path, payload in before.items():
        assert after.get(path) == payload, (
            f"store entry {path.name} changed across a write/undo pair"
        )

    # A cold engine over the same store answers identically too.
    cold = _engine(engine.database, tmp_path)
    assert str(cold.evaluate(QUERY).formula) == original_answer


def test_double_undo_round_trips_repeatedly(tmp_path):
    """The round trip composes: N write/undo pairs are still identity."""
    engine = _engine(_db(), tmp_path)
    original_print = engine.fingerprint
    delta = make_delta(
        ("insert", "S", "(5 <= x0 & x0 <= 6)"),
        ("insert", "S", "(8 <= x0 & x0 <= 9)"),
    )
    for _ in range(3):
        engine.apply_delta(delta)
        engine.apply_delta(invert(delta))
        assert engine.fingerprint == original_print


def test_undo_of_mixed_delta_restores_multiset_not_order(tmp_path):
    """Retracting a pre-existing disjunct loses its position.

    The write/undo pair around a mixed insert+retract delta restores
    the disjunct *multiset* — a logically equivalent relation — but
    the re-inserted disjunct lands at the end, so the fingerprint may
    legitimately differ (documented on
    :func:`repro.incremental.invert`)."""
    engine = _engine(_db(), tmp_path)
    original = engine.database.relation("S")
    delta = make_delta(
        ("insert", "S", "(5 <= x0 & x0 <= 6)"),
        ("retract", "S", "(0 <= x0 & x0 <= 1)"),
    )
    engine.apply_delta(delta)
    engine.apply_delta(invert(delta))
    from repro.incremental import disjunct_list

    restored = engine.database.relation("S")
    assert sorted(map(str, disjunct_list(restored.formula))) \
        == sorted(map(str, disjunct_list(original.formula)))
    assert restored.equivalent(original)


def test_lineage_replay_equals_live_database(tmp_path):
    """Every version an engine lived through replays to itself."""
    engine = _engine(_db(), tmp_path)
    fingerprints = [engine.fingerprint]
    for i in range(4):
        engine.apply_delta(make_delta((
            "insert", "S", f"({10 + 2 * i} <= x0 & x0 <= {11 + 2 * i})"
        )))
        fingerprints.append(engine.fingerprint)

    log = LineageLog(store_at(tmp_path))
    for fingerprint in fingerprints:
        replayed = log.replay(fingerprint)
        assert database_fingerprint(replayed) == fingerprint
    # The tip replay is structurally the live database, byte for byte.
    tip = log.replay(fingerprints[-1])
    for name, relation in engine.database:
        assert str(tip.relation(name).formula) == str(relation.formula)


def test_compaction_preserves_answers(tmp_path):
    """A compacted chain stores a snapshot but answers identically."""
    store = store_at(tmp_path)
    log = LineageLog(store, compact_every=3)
    registry = get_registry()
    compactions_before = registry.get("incremental.lineage_compactions")

    database = _db()
    databases = [database]
    for i in range(5):
        delta = make_delta((
            "insert", "S", f"({10 + 2 * i} <= x0 & x0 <= {11 + 2 * i})"
        ))
        child = apply_delta(database, delta)
        log.record(database, child, delta)
        database = child
        databases.append(database)

    assert registry.get("incremental.lineage_compactions") \
        > compactions_before
    tip_print = database_fingerprint(database)
    tip_record = log.load(tip_print)
    assert tip_record is not None
    replayed = log.replay(tip_print)
    assert database_fingerprint(replayed) == tip_print

    live = QueryEngine(
        database, cache=EngineCache(metrics=MetricsRegistry()),
        config=EngineConfig(optimizer="off"),
    ).evaluate(QUERY)
    from_chain = QueryEngine(
        replayed, cache=EngineCache(metrics=MetricsRegistry()),
        config=EngineConfig(optimizer="off"),
    ).evaluate(QUERY)
    assert str(live.formula) == str(from_chain.formula)

    # Intermediate (pre-compaction) versions stay replayable as well.
    for version in databases:
        fingerprint = database_fingerprint(version)
        assert database_fingerprint(log.replay(fingerprint)) \
            == fingerprint


def test_lineage_records_are_never_overwritten(tmp_path):
    """Recording an edge onto an already-recorded child is a no-op.

    Content addressing makes the existing record authoritative; in
    particular an undo back to the root must not replace the root
    snapshot with a delta edge (which would make the chain cyclic).
    """
    store = store_at(tmp_path)
    log = LineageLog(store)
    database = _db()
    delta = make_delta(("insert", "S", "(5 <= x0 & x0 <= 6)"))
    child = apply_delta(database, delta)
    log.record(database, child, delta)

    root_print = database_fingerprint(database)
    root_record = log.load(root_print)
    assert root_record is not None and root_record.is_snapshot

    # Undo: child -> original.  The root snapshot must survive.
    returned = log.record(child, database, invert(delta))
    assert returned.is_snapshot
    assert log.load(root_print).is_snapshot
    # And both versions still replay.
    assert database_fingerprint(log.replay(root_print)) == root_print
    child_print = database_fingerprint(child)
    assert database_fingerprint(log.replay(child_print)) == child_print


def test_lineage_codec_round_trip(tmp_path):
    """Lineage records survive the store's encode/decode round trip."""
    store = store_at(tmp_path)
    database = _db()
    delta = make_delta(("insert", "S", "(5 <= x0 & x0 <= 6)"))
    child = apply_delta(database, delta)
    record = LineageRecord(
        parent=database_fingerprint(database),
        child=database_fingerprint(child),
        seq=1,
        ops=tuple(
            (op.action, op.relation, op.formula) for op in delta.ops
        ),
        snapshot=None,
    )
    key = lineage_key(record.child)
    store.save("lineage", key, record)
    loaded = store.load("lineage", key)
    assert isinstance(loaded, LineageRecord)
    assert loaded.parent == record.parent
    assert loaded.child == record.child
    assert loaded.seq == record.seq
    assert loaded.ops == record.ops
    assert loaded.snapshot is None

    snapshot = LineageRecord(
        parent="",
        child=database_fingerprint(database),
        seq=0,
        ops=(),
        snapshot=tuple(database.relations),
    )
    store.save("lineage", lineage_key(snapshot.child), snapshot)
    loaded = store.load("lineage", lineage_key(snapshot.child))
    assert loaded.is_snapshot
    rebuilt = loaded.snapshot_database()
    assert database_fingerprint(rebuilt) == snapshot.child


def test_replay_unknown_fingerprint_raises(tmp_path):
    from repro.errors import DeltaError

    log = LineageLog(store_at(tmp_path))
    with pytest.raises(DeltaError):
        log.replay("0" * 64)
