"""Regenerate the paper's figures as SVG files.

* Figure 1-3 — the running example relation, its hyperplanes and its
  arrangement (we use the triangle whose arrangement has the paper's
  7 + 9 + 3 face census).
* Figure 5 — the multiplication-by-convex-closure construction.
* Figures 7-8 — the Appendix-A decomposition of the bounded pentagon.
* Figures 9-10 — the decomposition of the unbounded wedge.

Writes ./figures/*.svg (creates the directory next to the cwd).

Run with:  python examples/figures.py
"""

import pathlib

from repro import ConstraintDatabase, parse_formula
from repro.arrangement.builder import build_arrangement
from repro.constraints.relation import ConstraintRelation
from repro.regions.nc1 import NC1Decomposition
from repro.viz.svg import (
    render_arrangement,
    render_nc1_decomposition,
    render_relation,
)


def main() -> None:
    out = pathlib.Path("figures")
    out.mkdir(exist_ok=True)

    triangle = ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y >= 0 & x + y <= 1")
    )
    (out / "fig1_relation.svg").write_text(
        render_relation(triangle, viewport=(-0.5, 1.5, -0.5, 1.5))
    )
    arrangement = build_arrangement(triangle)
    (out / "fig3_arrangement.svg").write_text(
        render_arrangement(arrangement, viewport=(-0.5, 1.5, -0.5, 1.5))
    )
    census = arrangement.face_count_by_dimension()
    print(f"arrangement census (paper: 7/9/3): {census}")

    pentagon = ConstraintRelation.make(
        ("x", "y"),
        parse_formula(
            "y >= 0 & 3*x - 2*y <= 12 & 3*x + 4*y <= 30 & "
            "3*x - 4*y >= -18 & 3*x + 2*y >= 0"
        ),
    )
    pentagon_regions = NC1Decomposition(pentagon)
    (out / "fig8_pentagon_decomposition.svg").write_text(
        render_nc1_decomposition(
            pentagon_regions, viewport=(-3.0, 7.0, -1.0, 7.0)
        )
    )
    print(
        "pentagon NC1 census (paper: 3 two-dim, 7 one-dim, 5 vertices): "
        f"{pentagon_regions.count_by_dimension()}"
    )

    wedge = ConstraintRelation.make(
        ("x", "y"), parse_formula("x >= 0 & y <= x & y >= -1")
    )
    wedge_regions = NC1Decomposition(wedge)
    (out / "fig10_wedge_decomposition.svg").write_text(
        render_nc1_decomposition(
            wedge_regions, viewport=(-1.0, 8.0, -2.0, 8.0)
        )
    )
    print(f"wedge NC1 census: {wedge_regions.count_by_dimension()}")

    db = ConstraintDatabase.single(triangle)
    del db
    print(f"\nfigures written to {out.resolve()}")


if __name__ == "__main__":
    main()
