"""Quickstart: linear constraint databases and region queries.

Builds a couple of databases over (ℝ, <, +), inspects their region
extensions, and evaluates RegFO and RegLFP queries — including the
paper's connectivity query.

Run with:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    ConstraintDatabase,
    QueryEngine,
    RegionExtension,
    parse_formula,
    parse_query,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A database is a finitely represented relation over (ℝ, <, +).
    # ------------------------------------------------------------------
    db = ConstraintDatabase.from_formula(
        parse_formula("(0 < x0 & x0 < 1) | (2 < x0 & x0 < 3)"), arity=1
    )
    print("database:")
    print(f"  {db}")
    print(f"  representation size |B| = {db.size()}")

    # ------------------------------------------------------------------
    # 2. Its region extension: the two-sorted structure of Definition 4.1.
    # ------------------------------------------------------------------
    extension = RegionExtension.build(db)
    print(f"\nregion extension: {extension}")
    for region in extension.regions:
        inside = extension.region_subset_of_spatial(region.index)
        print(f"  {region}  {'⊆ S' if inside else ''}")

    # ------------------------------------------------------------------
    # 3. RegFO: first-order queries mixing both sorts.
    # ------------------------------------------------------------------
    answer = QueryEngine(db).evaluate(
        parse_query("exists y. S(y) & x < y")
    )
    print("\nRegFO answer to 'exists y. S(y) & x < y':")
    print(f"  {answer}")
    print(f"  contains 2?   {answer.contains((Fraction(2),))}")
    print(f"  contains 10?  {answer.contains((Fraction(10),))}")

    # ------------------------------------------------------------------
    # 4. RegLFP: the paper's connectivity query (Section 5).
    # ------------------------------------------------------------------
    conn = parse_query(
        "forall a, b. (S(a) & S(b)) -> "
        "(exists RX, RY. (a) in RX & (b) in RY & "
        "[lfp M(R, Rp). ((R = Rp & sub(R, S)) | "
        "(exists Z. M(R, Z) & adj(Z, Rp) & sub(Rp, S)))](RX, RY))"
    )
    print("\nconnectivity (RegLFP):")
    print(f"  two separated intervals: {QueryEngine(db).truth(conn)}")

    one_piece = ConstraintDatabase.from_formula(
        parse_formula("0 < x0 & x0 < 3"), arity=1
    )
    print(f"  a single interval:       {QueryEngine(one_piece).truth(conn)}")


if __name__ == "__main__":
    main()
