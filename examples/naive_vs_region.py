"""Why the paper restricts recursion to the region sort.

The introduction's warning, executed side by side:

1. A *naive* least fixed point over element tuples — the induction
   "0 ∈ X and X + 1 ⊆ X" — defines ℕ inside (ℝ, <, +): its stages grow
   forever and no finite linear representation of the fixed point
   exists.  We watch the representation size climb until the stage cap.
2. The same engine converges happily when the fixed point is
   semi-linear (saturating an interval).
3. The region-restricted LFP of the paper's languages terminates on
   *every* input, bounded by |Reg|^k stages.

Also shows the topological operators (closure / interior / boundary),
which stay inside FO+LIN — recursion is the thing that breaks, not
expressive first-order constructs.

Run with:  python examples/naive_vs_region.py
"""

from repro import ConstraintDatabase, parse_formula, parse_query
from repro.constraints.relation import ConstraintRelation
from repro.constraints.topology import boundary, closure, interior
from repro.logic.evaluator import Evaluator
from repro.naive.element_fixpoint import (
    bounded_saturation_body,
    define_naturals_body,
    naive_lfp,
)
from repro.twosorted.structure import RegionExtension


def main() -> None:
    print("1. the diverging induction  X = {0} ∪ (X + 1)   (defines ℕ)")
    for cap in (2, 4, 8, 12):
        result = naive_lfp(("n",), define_naturals_body, max_stages=cap)
        print(
            f"   stage cap {cap:2}: converged={result.converged}, "
            f"representation size {result.last_stage.representation_size()}"
        )
    print("   -> stages grow forever; the naive language does not "
          "terminate.\n")

    print("2. a converging induction  X = [0,1/2] ∪ ((X + 1/2) ∩ [0,1])")
    result = naive_lfp(("n",), bounded_saturation_body, max_stages=10)
    print(
        f"   converged after {result.stages} stages; "
        f"fixed point = {result.fixpoint}\n"
    )

    print("3. region-sort LFP terminates on every input (Section 5):")
    database = ConstraintDatabase.from_formula(
        parse_formula("0 <= x0 & x0 <= 3"), 1
    )
    extension = RegionExtension.build(database)
    evaluator = Evaluator(extension)
    query = parse_query(
        "exists X, Y. [lfp M(R, Rp). (R = Rp) | "
        "(exists Z. M(R, Z) & adj(Z, Rp))](X, Y)"
    )
    print(f"   reachability over regions: {evaluator.truth(query)}")
    print(
        f"   stages used: {evaluator.metrics.get('fixpoint_stages')} "
        f"(bound: |Reg|^2 = {len(extension.regions) ** 2})\n"
    )

    print("4. FO+LIN topology (no recursion needed):")
    s = ConstraintRelation.make(
        ("x",), parse_formula("(0 < x & x < 1) | x = 3")
    )
    print(f"   S         = {s}")
    print(f"   closure   = {closure(s)}")
    print(f"   interior  = {interior(s)}")
    print(f"   boundary  = {boundary(s)}")


if __name__ == "__main__":
    main()
