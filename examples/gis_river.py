"""The Figure 6 GIS scenario: a river, cities, chemicals.

Builds river maps, runs the paper's RegLFP pollution program — "follow
the river from its spring, collect the chemicals, flag the combination"
— and prints the verdicts for a polluted, a clean, and an unreachable
scenario.

Run with:  python examples/gis_river.py
"""

from fractions import Fraction

from repro.queries.river import (
    RiverMap,
    build_river_database,
    pollution_query,
    river_has_chemical_sequence,
)

F = Fraction


def describe(name: str, river: RiverMap) -> None:
    database = build_river_database(river)
    verdict = river_has_chemical_sequence(database)
    print(f"{name}:")
    print(f"  river: [0, {river.length}]  gaps: {list(river.gaps)}")
    print(f"  chem1 zones: {list(river.chem1_zones)}")
    print(f"  chem2 zones: {list(river.chem2_zones)}")
    print(f"  -> chemical combination found: {verdict}\n")


def main() -> None:
    print("the RegLFP pollution program (paper, Section 5):")
    print(f"  {pollution_query()}\n")

    describe(
        "polluted river",
        RiverMap(
            length=6,
            chem1_zones=((F(1), F(2)),),
            chem2_zones=((F(4), F(5)),),
        ),
    )
    describe("clean river", RiverMap(length=6))
    describe(
        "dried-up river (pollution beyond the gap, unreachable)",
        RiverMap(
            length=6,
            chem1_zones=((F(1), F(2)),),
            chem2_zones=((F(4), F(5)),),
            gaps=((F(1, 2), F(3, 4)),),
        ),
    )


if __name__ == "__main__":
    main()
