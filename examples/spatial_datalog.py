"""Spatial datalog next to the region languages.

The paper's related work ([5], Geerts & Kuijpers) studies datalog whose
relations are constraint relations over the reals.  This example runs:

1. a unit-step reachability program that terminates on bounded rivers
   and matches the region-logic connected component exactly;
2. the successor program on an unbounded domain — observably divergent;
3. the same spirit of recursion in RegLFP — terminating by construction.

Run with:  python examples/spatial_datalog.py
"""

from fractions import Fraction

from repro import ConstraintDatabase, parse_formula
from repro.datalog import evaluate_program
from repro.datalog.parser import parse_program
from repro.queries.connectivity import is_connected
from repro.queries.reachability import connected_component

F = Fraction

REACH = """
% points of S reachable from 0 by unit steps inside S
Reach(x) :- S(x), x = 0.
Reach(y) :- Reach(x), S(y), y - x <= 1, x - y <= 1.
"""

SUCCESSOR = """
P(x) :- S(x), x = 0.
P(y) :- P(x), S(y), y = x + 1.
"""


def main() -> None:
    program = parse_program(REACH)
    print("program:")
    for rule in program.rules:
        print(f"  {rule}")

    database = ConstraintDatabase.from_formula(
        parse_formula("(0 <= x0 & x0 <= 2) | (5 <= x0 & x0 <= 6)"), 1
    )
    outcome = evaluate_program(program, database)
    print(f"\non two separated pieces (converged={outcome.converged}, "
          f"{outcome.stages} stages):")
    print(f"  Reach = {outcome['Reach']}")
    component = connected_component(database, (F(0),))
    print(f"  region-logic component of 0 = {component}")
    agree = outcome["Reach"].rename_to(("x0",)).equivalent(component)
    print(f"  datalog == region logic: {agree}")

    print("\nthe successor program on x >= 0 (stage cap 8):")
    diverging = evaluate_program(
        parse_program(SUCCESSOR),
        ConstraintDatabase.from_formula(parse_formula("x0 >= 0"), 1),
        max_stages=8,
    )
    print(f"  converged: {diverging.converged}; representation sizes "
          f"per stage: {diverging.stage_sizes}")

    print("\nregion-sort recursion terminates on every input:")
    print(f"  is_connected (RegLFP): {is_connected(database, 'lfp')}")


if __name__ == "__main__":
    main()
