"""Theorem 6.4 in action: machines, encodings, inductive simulation.

Encodes databases as words over the ordered region sort, runs small
Turing machines both directly and through the region-tuple inductive
definition of the capture proof, and prints the agreement table.

Run with:  python examples/capture_demo.py
"""

from repro import ConstraintDatabase, parse_formula
from repro.capture.compiler import capture_run
from repro.capture.machine import (
    machine_contains_one,
    machine_first_symbol_is,
    machine_parity_of_ones,
)


def main() -> None:
    databases = [
        ("open interval", "0 < x0 & x0 < 1", 1),
        ("closed interval", "0 <= x0 & x0 <= 1", 1),
        ("interval + point", "(0 <= x0 & x0 <= 1) | x0 = 3", 1),
        ("triangle", "x0 >= 0 & x1 >= 0 & x0 + x1 <= 1", 2),
    ]
    machines = [
        ("first symbol is 1", machine_first_symbol_is("1")),
        ("parity of ones", machine_parity_of_ones()),
        ("contains a one", machine_contains_one()),
    ]

    for db_name, text, arity in databases:
        database = ConstraintDatabase.from_formula(
            parse_formula(text), arity
        )
        print(f"database: {db_name}  ({text})")
        first = True
        for m_name, machine in machines:
            result = capture_run(machine, database)
            if first:
                print(
                    f"  encoding word ({result.region_count} regions, "
                    f"k={result.arity}): {result.word}"
                )
                first = False
            print(
                f"  {m_name:20} direct={result.direct_accepts!s:5} "
                f"inductive={result.inductive_accepts!s:5} "
                f"agree={result.agree}"
            )
        print()


if __name__ == "__main__":
    main()
