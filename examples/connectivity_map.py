"""Connectivity of 2-D maps in RegLFP, RegTC and by graph search.

Builds a family of planar databases, decides connectivity with the
paper's LFP query, the Section-7 TC variant, and the union-find ground
truth, and prints the agreement table.

Run with:  python examples/connectivity_map.py
"""

import time

from repro.queries.connectivity import is_connected
from repro.workloads.generators import (
    chain_of_boxes,
    interval_chain,
    stripes,
)


def main() -> None:
    scenarios = [
        ("1 interval", interval_chain(1)),
        ("3 touching intervals", interval_chain(3)),
        ("3 separated intervals", interval_chain(3, gap=True)),
        ("2 touching boxes", chain_of_boxes(2)),
        ("2 separated stripes", stripes(2)),
    ]
    header = f"{'scenario':28} {'lfp':>6} {'tc':>6} {'ground':>7} {'t_lfp':>8}"
    print(header)
    print("-" * len(header))
    for name, database in scenarios:
        start = time.perf_counter()
        lfp = is_connected(database, "lfp")
        elapsed = time.perf_counter() - start
        tc = is_connected(database, "tc")
        ground = is_connected(database, "ground")
        assert lfp == tc == ground, "methods disagree!"
        print(
            f"{name:28} {str(lfp):>6} {str(tc):>6} {str(ground):>7} "
            f"{elapsed:7.2f}s"
        )
    print("\nall three methods agree on every scenario.")


if __name__ == "__main__":
    main()
